"""Unit tests for program validation."""

import pytest

from repro.ir import ProgramBuilder
from repro.ir.validate import ValidationError, ensure_valid, validate


def make_base():
    b = ProgramBuilder()
    b.add_class("A")
    b.add_field("A", "f", "A")
    b.add_field("A", "sf", "A", is_static=True)
    with b.method("A", "foo", params=("x",)) as m:
        m.ret("x")
    with b.method("A", "smk", static=True) as m:
        r = m.new("A")
        m.ret(r)
    return b


def test_valid_program_has_no_problems():
    b = make_base()
    with b.main() as m:
        a = m.new("A")
        m.store(a, "f", a)
        c = m.load(a, "f")
        m.invoke(a, "foo", c, target="r")
        m.static_invoke("A", "smk", target="s")
        m.static_store("A", "sf", "s")
        m.cast("A", "r")
    assert validate(b.build()) == []


def test_unknown_allocation_class_reported():
    b = make_base()
    with b.main() as m:
        m.new("Ghost")
    problems = validate(b.build())
    assert any("Ghost" in p for p in problems)


def test_unknown_cast_class_reported():
    b = make_base()
    with b.main() as m:
        a = m.new("A")
        m.cast("Ghost", a)
    assert any("Ghost" in p for p in validate(b.build()))


def test_undeclared_field_reported():
    b = make_base()
    with b.main() as m:
        a = m.new("A")
        m.load(a, "nothere")
    assert any("nothere" in p for p in validate(b.build()))


def test_undeclared_static_field_reported():
    b = make_base()
    with b.main() as m:
        m.static_load("A", "ghostfield")
    assert any("ghostfield" in p for p in validate(b.build()))


def test_instance_field_not_usable_statically():
    b = make_base()
    with b.main() as m:
        m.static_load("A", "f")  # f is an instance field
    assert any("static field" in p for p in validate(b.build()))


def test_unknown_static_method_reported():
    b = make_base()
    with b.main() as m:
        m.static_invoke("A", "ghost")
    assert any("ghost" in p for p in validate(b.build()))


def test_static_call_arity_mismatch_reported():
    b = make_base()
    with b.main() as m:
        a = m.new("A")
        m.static_invoke("A", "smk", a)  # smk takes no params
    assert any("arity" in p for p in validate(b.build()))


def test_virtual_call_with_wrong_arity_reported():
    b = make_base()
    with b.main() as m:
        a = m.new("A")
        m.invoke(a, "foo")  # foo takes one param
    assert any("foo" in p for p in validate(b.build()))


def test_missing_main_reported():
    from repro.ir.program import Program
    from repro.ir.types import TypeHierarchy

    program = Program(TypeHierarchy())
    program.finalize()
    assert any("main" in p for p in validate(program))


def test_ensure_valid_raises_with_details():
    b = make_base()
    with b.main() as m:
        m.new("Ghost")
    with pytest.raises(ValidationError, match="Ghost"):
        ensure_valid(b.build())


def test_ensure_valid_returns_program():
    b = make_base()
    with b.main() as m:
        m.new("A")
    p = b.build()
    assert ensure_valid(p) is p
