"""Unit tests for the PointsToResult query surface."""

from repro.frontend import parse_program
from repro.pta import selector_for, solve

SOURCE = """
class A {
  field f: Object;
  method set(v) { this.f = v; }
}
main {
  a = new A();
  v = new Object();
  a.set(v);
  w = a.f;
}
"""


def result(selector="ci"):
    return solve(parse_program(SOURCE), selector_for(selector))


class TestObjects:
    def test_object_count_and_iteration(self):
        r = result()
        assert r.object_count == 2
        assert list(r.objects()) == [0, 1]

    def test_object_metadata(self):
        r = result()
        classes = {r.object_class(o) for o in r.objects()}
        assert classes == {"A", "Object"}
        for o in r.objects():
            assert r.object_sites(o) <= {1, 2}
            assert r.object_heap_context(o) == ()

    def test_describe_object(self):
        r = result()
        # select by class, not by id — hierarchy-ordered numbering
        # assigns ids by type, not discovery order
        a_obj = next(o for o in r.objects() if r.object_class(o) == "A")
        d = r.describe_object(a_obj)
        assert d.class_name == "A"
        assert d.site_key == 1
        assert "A" in str(d)


class TestVarQueries:
    def test_per_context_and_merged(self):
        r = result("1cs")
        contexts = r.contexts_of_method("A.set")
        assert len(contexts) == 1
        (ctx,) = contexts
        merged = r.var_points_to("A.set", "v")
        per_context = r.var_points_to("A.set", "v", ctx)
        assert merged == per_context
        assert {d.class_name for d in merged} == {"Object"}

    def test_unknown_var_is_empty(self):
        assert result().var_points_to("A.set", "ghost") == set()

    def test_total_context_count(self):
        assert result().total_context_count() == 2  # main + A.set


class TestFieldFacts:
    def test_field_points_to_iteration(self):
        r = result()
        facts = list(r.field_points_to())
        assert len(facts) == 1
        base, field_name, pointee = facts[0]
        assert field_name == "f"
        assert r.object_class(base) == "A"
        assert r.object_class(pointee) == "Object"

    def test_fields_written(self):
        r = result()
        a_obj = next(o for o in r.objects() if r.object_class(o) == "A")
        assert r.fields_written(a_obj) == {"f"}


class TestSubtypeQuery:
    def test_is_subtype_via_result(self):
        src = "class A { } class B extends A { } main { b = new B(); }"
        r = solve(parse_program(src))
        assert r.is_subtype("B", "A")
        assert not r.is_subtype("A", "B")
        assert not r.is_subtype("A", "Ghost")
