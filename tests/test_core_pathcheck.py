"""Unit tests for the Definition 2.1 path-enumeration oracle."""

from repro.core.automata import ERROR_TYPE_NAME
from repro.core.fpg import FieldPointsToGraph
from repro.core.pathcheck import (
    all_field_strings,
    reached_types,
    type_consistent_by_paths,
)


def diamond_fpg():
    fpg = FieldPointsToGraph()
    fpg.add_object(1, "T")
    fpg.add_object(2, "U")
    fpg.add_object(3, "U")
    fpg.add_object(4, "X")
    fpg.add_edge(1, "f", 2)
    fpg.add_edge(1, "f", 3)
    fpg.add_edge(2, "g", 4)
    fpg.add_edge(3, "g", 4)
    return fpg


class TestReachedTypes:
    def test_empty_string_is_own_type(self):
        assert reached_types(diamond_fpg(), 1, ()) == frozenset(["T"])

    def test_one_hop(self):
        assert reached_types(diamond_fpg(), 1, ("f",)) == frozenset(["U"])

    def test_two_hops_join(self):
        assert reached_types(diamond_fpg(), 1, ("f", "g")) == frozenset(["X"])

    def test_undefined_string_is_error(self):
        assert reached_types(diamond_fpg(), 1, ("g",)) == frozenset(
            [ERROR_TYPE_NAME]
        )

    def test_null_propagates(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        fpg.add_null_field(1, "f")
        assert reached_types(fpg, 1, ("f",)) == frozenset(["<null>"])


class TestAllFieldStrings:
    def test_includes_empty_string(self):
        strings = list(all_field_strings(diamond_fpg(), [1], 1))
        assert () in strings

    def test_bounded_by_length(self):
        strings = list(all_field_strings(diamond_fpg(), [1], 2))
        assert max(len(s) for s in strings) == 2
        # fields reachable from 1 are {f, g}: 1 + 2 + 4 strings
        assert len(strings) == 7

    def test_restricted_to_reachable_fields(self):
        fpg = diamond_fpg()
        fpg.add_object(9, "Z")
        fpg.add_edge(9, "zz", 9)
        strings = set(all_field_strings(fpg, [1], 1))
        assert ("zz",) not in strings


class TestTypeConsistency:
    def test_same_object_always_consistent(self):
        assert type_consistent_by_paths(diamond_fpg(), 1, 1, 4)

    def test_mixed_type_frontier_violates_condition_2(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        fpg.add_object(2, "T")
        fpg.add_object(3, "X")
        fpg.add_object(4, "Y")
        fpg.add_edge(1, "f", 3)
        fpg.add_edge(1, "f", 4)
        fpg.add_edge(2, "f", 3)
        fpg.add_edge(2, "f", 4)
        # identical automata, but Condition 2 fails for both
        assert not type_consistent_by_paths(fpg, 1, 2, 3)

    def test_condition_1_violation(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        fpg.add_object(2, "T")
        fpg.add_object(3, "X")
        fpg.add_object(4, "Y")
        fpg.add_edge(1, "f", 3)
        fpg.add_edge(2, "f", 4)
        assert not type_consistent_by_paths(fpg, 1, 2, 3)

    def test_figure2_objects_consistent(self):
        from tests.test_core_automata import figure2_fpg

        assert type_consistent_by_paths(figure2_fpg(), 1, 2, 6)
