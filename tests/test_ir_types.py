"""Unit tests for the type hierarchy."""

import pytest

from repro.ir.types import (
    ERROR_TYPE,
    NULL_TYPE,
    OBJECT_CLASS_NAME,
    ClassType,
    TypeHierarchy,
)


@pytest.fixture
def hierarchy():
    h = TypeHierarchy()
    h.add_class("A")
    h.add_class("B", "A")
    h.add_class("C", "A")
    h.add_class("D", "B")
    h.add_class("E")
    return h


class TestClassType:
    def test_equality_is_by_name(self):
        assert ClassType("A", None) == ClassType("A", "Whatever")
        assert ClassType("A", None) != ClassType("B", None)

    def test_hashable(self):
        assert len({ClassType("A", None), ClassType("A", "X")}) == 1

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ClassType("", None)

    def test_str(self):
        assert str(ClassType("Foo", None)) == "Foo"


class TestHierarchyConstruction:
    def test_object_is_implicit_root(self):
        h = TypeHierarchy()
        assert OBJECT_CLASS_NAME in h
        assert len(h) == 1

    def test_default_superclass_is_object(self, hierarchy):
        assert hierarchy.get("A").superclass_name == OBJECT_CLASS_NAME

    def test_readding_same_class_is_noop(self, hierarchy):
        before = len(hierarchy)
        hierarchy.add_class("B", "A")
        assert len(hierarchy) == before

    def test_conflicting_redeclaration_rejected(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.add_class("B", "C")

    def test_unknown_superclass_rejected(self):
        h = TypeHierarchy()
        with pytest.raises(ValueError):
            h.add_class("A", "Ghost")

    def test_object_cannot_get_superclass(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.add_class(OBJECT_CLASS_NAME, "A")


class TestSubtyping:
    def test_reflexive(self, hierarchy):
        a = hierarchy.get("A")
        assert hierarchy.is_subtype(a, a)

    def test_direct_and_transitive(self, hierarchy):
        assert hierarchy.is_subtype(hierarchy.get("B"), hierarchy.get("A"))
        assert hierarchy.is_subtype(hierarchy.get("D"), hierarchy.get("A"))

    def test_not_symmetric(self, hierarchy):
        assert not hierarchy.is_subtype(hierarchy.get("A"), hierarchy.get("B"))

    def test_siblings_unrelated(self, hierarchy):
        assert not hierarchy.is_subtype(hierarchy.get("B"), hierarchy.get("C"))
        assert not hierarchy.is_subtype(hierarchy.get("E"), hierarchy.get("A"))

    def test_everything_subtype_of_object(self, hierarchy):
        root = hierarchy.get(OBJECT_CLASS_NAME)
        for cls in hierarchy:
            assert hierarchy.is_subtype(cls, root)

    def test_null_subtype_of_everything(self, hierarchy):
        assert hierarchy.is_subtype(NULL_TYPE, hierarchy.get("D"))

    def test_error_type_not_subtype(self, hierarchy):
        assert not hierarchy.is_subtype(ERROR_TYPE, hierarchy.get("A"))


class TestQueries:
    def test_superclass_chain(self, hierarchy):
        chain = hierarchy.superclass_chain(hierarchy.get("D"))
        assert [c.name for c in chain] == ["D", "B", "A", OBJECT_CLASS_NAME]

    def test_superclass_of_root_is_none(self, hierarchy):
        assert hierarchy.superclass(hierarchy.get(OBJECT_CLASS_NAME)) is None

    def test_subtypes_transitive_reflexive(self, hierarchy):
        names = {c.name for c in hierarchy.subtypes(hierarchy.get("A"))}
        assert names == {"A", "B", "C", "D"}

    def test_subtypes_of_leaf(self, hierarchy):
        assert [c.name for c in hierarchy.subtypes(hierarchy.get("E"))] == ["E"]

    def test_iteration_and_len(self, hierarchy):
        assert len(list(hierarchy)) == len(hierarchy) == 6
