"""Tests for the may-alias client, including the paper's scoping caveat:
MAHJONG trades may-alias precision for speed while preserving the
type-dependent clients."""

import pytest

from repro.analysis import run_analysis, run_pre_analysis
from repro.clients import alias_pairs, may_alias
from repro.frontend import parse_program
from repro.pta import solve

SOURCE = """
class A { field f: Object; }
main {
  a = new A();
  b = a;
  c = new A();
  v = new Object();
  a.f = v;
  w = a.f;
  u = b.f;
}
"""


def result():
    return solve(parse_program(SOURCE))


class TestMayAlias:
    def test_copies_alias(self):
        assert may_alias(result(), "<Main>.main", "a", "b")

    def test_distinct_allocations_do_not_alias(self):
        assert not may_alias(result(), "<Main>.main", "a", "c")

    def test_loads_from_aliased_bases_alias(self):
        assert may_alias(result(), "<Main>.main", "w", "u")
        assert may_alias(result(), "<Main>.main", "w", "v")

    def test_empty_variable_never_aliases(self):
        assert not may_alias(result(), "<Main>.main", "a", "ghost")


class TestAliasPairs:
    def test_pairs_are_unordered_and_complete(self):
        report = alias_pairs(result(), "<Main>.main")
        assert ("a", "b") in report.alias_pairs
        assert ("u", "w") in report.alias_pairs
        assert ("u", "v") in report.alias_pairs
        assert not any(p == ("a", "c") or p == ("c", "a")
                       for p in report.alias_pairs)
        assert report.aliases("b", "a")  # order-insensitive query

    def test_variable_count_covers_all_locals(self):
        report = alias_pairs(result(), "<Main>.main")
        assert report.variable_count == 6  # a b c v w u (main is static)

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError):
            alias_pairs(result(), "Ghost.method")


class TestMahjongAliasCaveat:
    """Section 1: MAHJONG serves type-dependent clients, 'but not
    necessarily others such as may-alias'."""

    SOURCE = """
    class Box { field data: Object; }
    class X { }
    main {
      b1 = new Box();
      b2 = new Box();
      x1 = new X();
      x2 = new X();
      b1.data = x1;
      b2.data = x2;
      g1 = b1.data;
      g2 = b2.data;
    }
    """

    def test_merging_introduces_spurious_aliases(self):
        program = parse_program(self.SOURCE)
        pre = run_pre_analysis(program)
        base = run_analysis(program, "ci").result
        mahjong = run_analysis(program, "M-ci", pre=pre).result

        # precise: b1 and b2 are distinct objects, so are their contents
        assert not may_alias(base, "<Main>.main", "b1", "b2")
        assert not may_alias(base, "<Main>.main", "g1", "g2")
        # merged: the two boxes (and the two X payloads) collapse
        assert may_alias(mahjong, "<Main>.main", "b1", "b2")
        assert may_alias(mahjong, "<Main>.main", "g1", "g2")

    def test_type_dependent_metrics_survive_anyway(self):
        program = parse_program(self.SOURCE)
        base = run_analysis(program, "ci").metrics()
        mahjong = run_analysis(program, "M-ci").metrics()
        for metric in ("call_graph_edges", "poly_call_sites",
                       "may_fail_casts"):
            assert base[metric] == mahjong[metric]

    def test_alias_pair_count_only_grows_under_merging(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        base = run_analysis(tiny_program, "ci").result
        mahjong = run_analysis(tiny_program, "M-ci", pre=pre).result
        for method in ("<Main>.main", "Box.get"):
            base_report = alias_pairs(base, method)
            mahjong_report = alias_pairs(mahjong, method)
            assert base_report.alias_pair_count <= mahjong_report.alias_pair_count
