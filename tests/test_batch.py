"""The batch corpus runner: per-program isolation, transient-fault
retry, and structured failure records."""

import pytest

from repro import faults
from repro.analysis.governor import PhaseBudget, ResourceGovernor
from repro.bench.batch import BatchRecord, run_batch
from repro.faults import FaultPlan, FaultSpec
from repro.workloads import corpus_names, corpus_program


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    faults.uninstall()


def _corpus(*names):
    return [(name, corpus_program(name)) for name in names]


class TestHappyPath:
    def test_all_ok(self):
        result = run_batch(_corpus("cache", "iterator"), config="M-2obj")
        assert [r.status for r in result.records] == ["ok", "ok"]
        assert result.all_usable
        assert result.counts() == {"ok": 2}
        for record in result.records:
            assert record.metrics["analysis"] == "M-2obj"
            assert record.retries == 0

    def test_thunks_evaluated_lazily(self):
        result = run_batch([("cache", lambda: corpus_program("cache"))])
        assert result.records[0].status == "ok"

    def test_to_dict_round_trips(self):
        import json

        result = run_batch(_corpus("cache"))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["counts"] == {"ok": 1}
        assert payload["records"][0]["program"] == "cache"

    def test_render_mentions_totals(self):
        result = run_batch(_corpus("cache"))
        assert "1 ok" in result.render()


class TestIsolation:
    def test_loader_crash_is_isolated(self):
        def explode():
            raise RuntimeError("generator bug")

        result = run_batch([("bad", explode), *_corpus("cache")])
        assert [r.status for r in result.records] == ["failed", "ok"]
        assert "RuntimeError: generator bug" in result.records[0].error
        assert not result.all_usable

    def test_injected_crash_is_isolated(self):
        plan = FaultPlan([FaultSpec(point="main-boundary", kind="crash")])
        with faults.active(plan):
            result = run_batch(_corpus("cache", "iterator"))
        # the crash burns its one activation on the first program; the
        # second completes
        assert [r.status for r in result.records] == ["failed", "ok"]
        assert "InjectedCrash" in result.records[0].error

    def test_exhaustion_degrades_instead_of_failing(self):
        plan = FaultPlan([FaultSpec(point="main-boundary", times=1)])
        with faults.active(plan):
            result = run_batch(_corpus("cache"), config="M-2obj")
        record = result.records[0]
        assert record.status == "degraded"
        assert record.usable
        assert record.degraded_from == "M-2obj"
        assert record.metrics["analysis"] == "M-2type"

    def test_exhausted_when_ladder_disabled(self):
        governor_factory = lambda: ResourceGovernor(  # noqa: E731
            budgets={"main": PhaseBudget(max_iterations=1)}, check_stride=1)
        result = run_batch(_corpus("cache"), config="2obj", degrade=False,
                           governor_factory=governor_factory)
        record = result.records[0]
        assert record.status == "exhausted"
        assert not record.usable
        assert record.exhaustion_cause == "work"
        assert record.failed_phase == "main"

    def test_fresh_governor_per_program(self):
        governors = []

        def factory():
            governor = ResourceGovernor(check_stride=1)
            governors.append(governor)
            return governor

        run_batch(_corpus("cache", "iterator"), governor_factory=factory)
        assert len(governors) == 2
        assert governors[0] is not governors[1]


class TestTransientRetry:
    def test_transient_fault_retried_once(self):
        plan = FaultPlan([FaultSpec(point="main-boundary",
                                    kind="transient", times=1)])
        with faults.active(plan):
            result = run_batch(_corpus("cache"), backoff_seconds=0.001)
        record = result.records[0]
        assert record.status == "ok"
        assert record.retries == 1

    def test_persistent_transient_becomes_failure(self):
        plan = FaultPlan([FaultSpec(point="main-boundary",
                                    kind="transient", times=-1)])
        with faults.active(plan):
            result = run_batch(_corpus("cache"), max_retries=2,
                               backoff_seconds=0.001)
        record = result.records[0]
        assert record.status == "failed"
        assert record.retries == 2
        assert "transient fault persisted" in record.error

    def test_batch_continues_after_retry_exhaustion(self):
        plan = FaultPlan([FaultSpec(point="main-boundary",
                                    kind="transient", times=3)])
        with faults.active(plan):
            result = run_batch(_corpus("cache", "iterator"), max_retries=2,
                               backoff_seconds=0.001)
        assert [r.status for r in result.records] == ["failed", "ok"]


class TestBackoffSleeper:
    """The backoff waits go through an injectable sleeper, every
    planned delay is recorded, and giving up never sleeps."""

    def test_injected_sleeper_replaces_real_sleep(self):
        slept = []
        plan = FaultPlan([FaultSpec(point="main-boundary",
                                    kind="transient", times=2)])
        with faults.active(plan):
            result = run_batch(_corpus("cache"), max_retries=2,
                               backoff_seconds=0.5, seed=3,
                               sleeper=slept.append)
        record = result.records[0]
        assert record.status == "ok"
        assert record.retries == 2
        assert slept == record.backoff_delays
        # jittered exponential: base * 2^(n-1) * [0.5, 1.5)
        assert 0.25 <= slept[0] < 0.75
        assert 0.5 <= slept[1] < 1.5

    def test_no_sleep_after_final_failure(self):
        slept = []
        plan = FaultPlan([FaultSpec(point="main-boundary",
                                    kind="transient", times=-1)])
        with faults.active(plan):
            # a real post-failure sleep at this base would stall the test
            result = run_batch(_corpus("cache"), max_retries=2,
                               backoff_seconds=10.0,
                               sleeper=slept.append)
        record = result.records[0]
        assert record.status == "failed"
        assert record.retries == 2
        # three delays planned (one per transient), only two slept —
        # the giving-up path must not delay the rest of the batch
        assert len(record.backoff_delays) == 3
        assert slept == record.backoff_delays[:2]

    def test_backoff_delays_deterministic_under_seed(self):
        def delays():
            plan = FaultPlan([FaultSpec(point="main-boundary",
                                        kind="transient", times=2)])
            with faults.active(plan):
                result = run_batch(_corpus("cache"), seed=11,
                                   backoff_seconds=0.01,
                                   sleeper=lambda _delay: None)
            return result.records[0].backoff_delays

        assert delays() == delays()

    def test_no_delays_recorded_without_transients(self):
        result = run_batch(_corpus("cache"))
        assert result.records[0].backoff_delays == []
        assert "backoff_delays" not in result.records[0].as_dict()


class TestBatchTracing:
    def test_trace_dir_writes_one_chrome_trace_per_program(self, tmp_path):
        from repro import obs

        run_batch(_corpus("cache", "iterator"), trace_dir=str(tmp_path))
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["cache.trace.json", "iterator.trace.json"]
        payload = obs.load_trace_file(str(tmp_path / "cache.trace.json"))
        assert obs.validate_chrome_trace(payload) == []
        names = {e.get("name") for e in payload["traceEvents"]}
        assert "batch:program" in names
        assert "phase:main" in names

    def test_shared_tracer_sees_batch_spans_and_backoff(self):
        from repro import obs

        sink = obs.InMemorySink()
        tracer = obs.Tracer(sinks=(sink,))
        plan = FaultPlan([FaultSpec(point="main-boundary",
                                    kind="transient", times=1)])
        with faults.active(plan):
            run_batch(_corpus("cache"), tracer=tracer,
                      backoff_seconds=0.001, sleeper=lambda _delay: None)
        spans = sink.find("batch:program")
        assert len(spans) == 1
        assert spans[0].attrs["program"] == "cache"
        assert "batch.backoff" in sink.instant_names()


class TestTraceSlugCollisions:
    """Distinct program names that slug identically must not overwrite
    each other's trace files (regression: ``a/b`` vs ``a:b``)."""

    def test_serial_path_dedups(self, tmp_path):
        program = corpus_program("cache")
        run_batch([("a/b", program), ("a:b", program), ("a_b", program)],
                  trace_dir=str(tmp_path))
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["a_b-2.trace.json", "a_b-3.trace.json",
                         "a_b.trace.json"]

    def test_sharded_path_dedups(self, tmp_path):
        program = corpus_program("cache")
        run_batch([("a/b", program), ("a:b", program)],
                  trace_dir=str(tmp_path), jobs=2)
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["a_b-2.trace.json", "a_b.trace.json"]

    def test_first_occurrence_keeps_bare_slug(self, tmp_path):
        from repro import obs

        program = corpus_program("cache")
        run_batch([("x/y", program), ("x_y", program)],
                  trace_dir=str(tmp_path))
        # input order decides who keeps the bare slug, and each file is
        # a valid trace of its own program
        payload = obs.load_trace_file(str(tmp_path / "x_y.trace.json"))
        assert obs.validate_chrome_trace(payload) == []


class TestShardedBatch:
    """``jobs=N`` fans the batch over a worker pool with derived
    per-program state; results are indistinguishable from serial."""

    def test_records_in_input_order(self):
        names = list(corpus_names())
        result = run_batch(_corpus(*names), jobs=4)
        assert [r.program for r in result.records] == names

    def test_render_byte_identical_to_serial(self):
        def rendered(jobs):
            result = run_batch(_corpus(*corpus_names()), config="M-2obj",
                               jobs=jobs)
            for record in result.records:
                record.seconds = 0.0  # the only wall-clock field
            return result.render()

        assert rendered(None) == rendered(2)

    def test_jobs_one_matches_jobs_four(self):
        def outcome(jobs):
            result = run_batch(_corpus(*corpus_names()), jobs=jobs)
            return [(r.program, r.status, r.retries) for r in result.records]

        assert outcome(1) == outcome(4)

    def test_thread_pool_works(self):
        result = run_batch(_corpus("cache", "iterator"), jobs=2,
                           pool="thread")
        assert [r.status for r in result.records] == ["ok", "ok"]

    def test_unpicklable_source_falls_back_to_parent(self):
        result = run_batch(
            [("lam", lambda: corpus_program("cache")),
             *_corpus("iterator")],
            jobs=2, pool="process")
        assert [r.program for r in result.records] == ["lam", "iterator"]
        assert result.all_usable

    def test_loader_crash_still_isolated(self):
        def explode():
            raise RuntimeError("generator bug")

        result = run_batch([("bad", explode), *_corpus("cache")], jobs=2)
        assert [r.status for r in result.records] == ["failed", "ok"]

    def test_trace_dir_collects_worker_traces(self, tmp_path):
        from repro import obs

        run_batch(_corpus("cache", "iterator"), trace_dir=str(tmp_path),
                  jobs=2)
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["cache.trace.json", "iterator.trace.json"]
        payload = obs.load_trace_file(str(tmp_path / "cache.trace.json"))
        assert obs.validate_chrome_trace(payload) == []
        names = {e.get("name") for e in payload["traceEvents"]}
        assert "batch:program" in names
        assert "phase:main" in names

    def test_governor_spec_enforced_in_workers(self):
        from repro.analysis.governor import GovernorSpec

        result = run_batch(
            _corpus("cache"), config="2obj", degrade=False, jobs=2,
            governor_spec=GovernorSpec(max_iterations=1, check_stride=1))
        record = result.records[0]
        assert record.status == "exhausted"
        assert record.exhaustion_cause == "work"

    def test_governor_factory_rejected(self):
        with pytest.raises(ValueError, match="governor_spec"):
            run_batch(_corpus("cache"), jobs=2,
                      governor_factory=lambda: ResourceGovernor())

    def test_live_tracer_rejected(self):
        from repro import obs

        with pytest.raises(ValueError, match="trace_dir"):
            run_batch(_corpus("cache"), jobs=2,
                      tracer=obs.Tracer(sinks=()))

    def test_fault_spec_with_thread_pool_rejected(self):
        with pytest.raises(ValueError, match="process-globally"):
            run_batch(_corpus("cache"), jobs=2, pool="thread",
                      fault_spec="main-boundary:kind=transient")

    def test_fault_spec_requires_sharded_mode(self):
        with pytest.raises(ValueError, match="sharded"):
            run_batch(_corpus("cache"),
                      fault_spec="main-boundary:kind=transient")


class TestShardedFaultDeterminism:
    """ISSUE satellite: a fault spec's firings are a pure function of
    (spec, seed, program name) — the same programs fault identically at
    any worker count."""

    SPEC = ("main-boundary:kind=transient:probability=0.5:times=2,"
            "merge-boundary:probability=0.3:times=1")

    def _outcome(self, jobs):
        result = run_batch(
            _corpus(*corpus_names()), config="M-2obj", jobs=jobs,
            backoff_seconds=0.0001, fault_spec=self.SPEC, fault_seed=7)
        return [(r.program, r.status, r.retries, r.degraded_from,
                 [round(d, 9) for d in r.backoff_delays])
                for r in result.records]

    def test_jobs_one_vs_jobs_four(self):
        first = self._outcome(1)
        assert first == self._outcome(4)
        # the spec actually bit somewhere, or the test proves nothing
        assert any(retries or degraded_from
                   for _, _, retries, degraded_from, _ in first)

    def test_repeatable_at_fixed_worker_count(self):
        assert self._outcome(2) == self._outcome(2)

    def test_env_faults_lifted_to_derived_plans(self, monkeypatch):
        """$REPRO_FAULTS in sharded mode becomes per-program derived
        plans — same firings at any worker count."""
        monkeypatch.setenv("REPRO_FAULTS", self.SPEC)
        monkeypatch.setenv("REPRO_FAULTS_SEED", "7")

        def outcome(jobs):
            result = run_batch(_corpus(*corpus_names()), config="M-2obj",
                               jobs=jobs, backoff_seconds=0.0001)
            return [(r.program, r.status, r.retries, r.degraded_from)
                    for r in result.records]

        first = outcome(1)
        assert first == outcome(4)
        # and it matches the explicit fault_spec path exactly
        assert first == [(p, s, r, d)
                         for p, s, r, d, _ in self._outcome(4)]

    def test_different_fault_seed_changes_firings(self):
        base = self._outcome(2)
        other = run_batch(
            _corpus(*corpus_names()), config="M-2obj", jobs=2,
            backoff_seconds=0.0001, fault_spec=self.SPEC, fault_seed=8)
        reshaped = [(r.program, r.status, r.retries, r.degraded_from,
                     [round(d, 9) for d in r.backoff_delays])
                    for r in other.records]
        assert reshaped != base


class TestAcceptance:
    """ISSUE acceptance: fault injection triggers every degradation path
    deterministically under a fixed seed while the batch completes."""

    def test_full_corpus_with_faults_completes(self):
        def outcome():
            plan = FaultPlan(
                [FaultSpec(point="merge-boundary", times=1),
                 FaultSpec(point="main-boundary", times=1),
                 FaultSpec(point="pre-boundary", kind="transient", times=1)],
                seed=7)
            with faults.active(plan):
                result = run_batch(
                    _corpus(*corpus_names()), config="M-2obj",
                    backoff_seconds=0.001, seed=7)
            return [(r.program, r.status, r.retries, r.degraded_from)
                    for r in result.records]

        first = outcome()
        assert first == outcome()
        assert len(first) == len(corpus_names())
        statuses = {status for _, status, _, _ in first}
        assert "degraded" in statuses  # faults bit somewhere
        assert "failed" not in statuses  # transient was retried
