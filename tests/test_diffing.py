"""Tests for site-level precision diffing."""

import pytest

from repro.analysis import run_analysis, run_pre_analysis
from repro.diffing import diff_results
from repro.frontend import parse_program
from repro.pta import solve
from repro.workloads import TINY, generate


def figure1_results(figure1_program):
    base = run_analysis(figure1_program, "ci").result
    alloc_type = run_analysis(figure1_program, "T-ci").result
    return base, alloc_type


class TestDiff:
    def test_equal_results_report_equality(self, figure1_program):
        a = run_analysis(figure1_program, "ci").result
        b = run_analysis(figure1_program, "ci").result
        diff = diff_results(a, b)
        assert diff.is_precision_equal
        assert "matches" in diff.summary()

    def test_alloc_type_losses_are_localized(self, figure1_program):
        base, alloc_type = figure1_results(figure1_program)
        diff = diff_results(base, alloc_type)
        assert not diff.is_precision_equal
        # the one virtual site (a.foo(), call site 1) gains B.foo
        assert set(diff.extra_call_targets) == {1}
        assert "B.foo" in diff.extra_call_targets[1]
        # the one cast becomes may-fail, the one mono site becomes poly
        assert diff.newly_failing_casts == frozenset([1])
        assert diff.newly_poly_sites == frozenset([1])
        assert "became may-fail" in diff.summary()

    def test_metric_deltas(self, figure1_program):
        base, alloc_type = figure1_results(figure1_program)
        diff = diff_results(base, alloc_type)
        assert diff.metric_deltas["may_fail_casts"] == (0, 1)
        base_edges, other_edges = diff.metric_deltas["call_graph_edges"]
        assert other_edges > base_edges

    def test_mahjong_diff_is_empty_on_workload(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        base = run_analysis(tiny_program, "2obj").result
        merged = run_analysis(tiny_program, "M-2obj", pre=pre).result
        diff = diff_results(base, merged)
        assert diff.is_precision_equal
        # ... while the heap itself did shrink
        base_objs, merged_objs = diff.metric_deltas["abstract_objects"]
        assert merged_objs < base_objs

    def test_different_programs_rejected(self, figure1_program, tiny_program):
        a = solve(figure1_program)
        b = solve(tiny_program)
        with pytest.raises(ValueError, match="same program"):
            diff_results(a, b)
