"""The analysis service (:mod:`repro.serve`): protocol, admission,
budgets/deadlines, the differential byte-identity contract, and the
HTTP shell end to end (in-process daemon, stdlib client)."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.governor import (
    GovernorConcurrencyError,
    GovernorSpec,
    ResourceGovernor,
)
from repro.analysis.pipeline import run_analysis
from repro.frontend import parse_program
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import BadRequest, canonical_json, deterministic_result
from repro.serve.server import (
    AnalysisService,
    ResultCache,
    ServeDaemon,
    ServiceConfig,
)
from repro.serve.tenants import AdmissionController, AdmissionRejected

from .conftest import FIGURE1_SOURCE

WORKLOAD = FIGURE1_SOURCE


def make_service(**overrides) -> AnalysisService:
    return AnalysisService(ServiceConfig(**overrides))


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_source_spec_roundtrip(self):
        key, program = protocol.load_program(WORKLOAD)
        assert key.startswith("source:")
        assert program.classes

    def test_bare_string_is_source_shorthand(self):
        key_a, _ = protocol.load_program(WORKLOAD)
        key_b, _ = protocol.load_program({"kind": "source",
                                          "text": WORKLOAD})
        assert key_a == key_b

    def test_corpus_and_profile_specs(self):
        key, program = protocol.load_program({"kind": "corpus",
                                              "name": "cache"})
        assert key == "corpus:cache"
        assert program.classes
        key2, program2 = protocol.load_program(
            {"kind": "profile", "name": "luindex", "scale": 0.05})
        assert key2 == "profile:luindex@0.05"
        assert program2.classes

    @pytest.mark.parametrize("spec", [
        42,
        {"kind": "nope"},
        {"kind": "source"},
        {"kind": "corpus", "name": "no-such-corpus"},
        {"kind": "profile", "name": "luindex", "scale": "wide"},
        "class { syntax error",
    ])
    def test_malformed_specs_raise_bad_request(self, spec):
        with pytest.raises(BadRequest):
            protocol.load_program(spec)

    def test_cache_key_varies_by_each_component(self):
        base = protocol.cache_key("source:x", "M-2obj", "backend=bitset")
        assert protocol.cache_key("source:y", "M-2obj",
                                  "backend=bitset") != base
        assert protocol.cache_key("source:x", "ci", "backend=bitset") != base
        assert protocol.cache_key("source:x", "M-2obj",
                                  "backend=set") != base
        assert protocol.cache_key("source:x", "M-2obj",
                                  "backend=bitset") == base

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == \
            canonical_json({"a": [2, 3], "b": 1})


# ----------------------------------------------------------------------
# The byte-identity contract, on both points-to-set backends
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("config", ["M-2obj", "M-2obj@set",
                                        "ci", "2obj@set"])
    def test_served_equals_direct(self, config):
        """A served analysis returns byte-identical deterministic
        payloads to a direct ``run_analysis`` — the service's
        correctness contract, pinned per backend via the ``@set``
        suffix."""
        direct = run_analysis(parse_program(WORKLOAD), config)
        direct_bytes = canonical_json(deterministic_result(direct))

        service = make_service()
        status, body = service.handle(
            "POST", "/v1/analyze", {"program": WORKLOAD, "config": config})
        assert status == 200, body
        served_bytes = canonical_json(body["analysis"]["result"])
        assert served_bytes == direct_bytes

        # and the cached second serving returns the same bytes again
        status2, body2 = service.handle(
            "POST", "/v1/analyze", {"program": WORKLOAD, "config": config})
        assert body2["cached"] is True
        assert canonical_json(body2["analysis"]["result"]) == direct_bytes

    def test_digest_distinguishes_configs(self):
        service = make_service()
        digests = set()
        for config in ("ci", "M-2obj"):
            _, body = service.handle(
                "POST", "/v1/analyze",
                {"program": WORKLOAD, "config": config})
            digests.add(body["analysis"]["result"]["digest"])
        assert len(digests) == 2


# ----------------------------------------------------------------------
# Deadlines and budgets
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_tiny_deadline_degrades_not_hangs(self):
        """A request deadline reaches the governor: the solve exhausts
        (riding the ladder) and comes back as a structured 200, fast."""
        service = make_service(
            governor=GovernorSpec(check_stride=1))
        start = time.monotonic()
        status, body = service.handle("POST", "/v1/analyze", {
            "program": {"kind": "profile", "name": "luindex", "scale": 0.4},
            "config": "M-3obj",
            "deadline_seconds": 0.005,
            "cache": False,
        })
        elapsed = time.monotonic() - start
        assert status == 200, body
        assert body["analysis"]["status"] in ("exhausted", "degraded")
        assert elapsed < 30.0
        if body["analysis"]["status"] == "exhausted":
            result = body["analysis"]["result"]
            assert result["timed_out"] is True
            assert result["digest"] is None

    def test_generous_deadline_unchanged_result(self):
        direct = run_analysis(parse_program(WORKLOAD), "M-2obj")
        direct_bytes = canonical_json(deterministic_result(direct))
        service = make_service(governor=GovernorSpec(check_stride=1))
        status, body = service.handle("POST", "/v1/analyze", {
            "program": WORKLOAD, "config": "M-2obj",
            "deadline_seconds": 120.0,
        })
        assert status == 200
        assert body["analysis"]["status"] == "ok"
        assert canonical_json(body["analysis"]["result"]) == direct_bytes

    def test_max_deadline_caps_requests(self):
        service = make_service(max_deadline_seconds=90.0)
        from repro.serve.server import _AnalyzeRequest

        parsed = _AnalyzeRequest.parse(
            {"program": WORKLOAD, "deadline_seconds": 600.0},
            service.config)
        assert parsed.deadline_seconds == 90.0
        # requests bringing no deadline inherit the ceiling too
        parsed2 = _AnalyzeRequest.parse({"program": WORKLOAD},
                                        service.config)
        assert parsed2.deadline_seconds == 90.0

    @pytest.mark.parametrize("bad", [0, -1, "soon"])
    def test_bad_deadline_is_bad_request(self, bad):
        service = make_service()
        status, body = service.handle("POST", "/v1/analyze", {
            "program": WORKLOAD, "deadline_seconds": bad})
        assert status == 400
        assert body["error"]["code"] == "bad-request"


class TestGovernorConcurrencyGuard:
    def test_cross_thread_reuse_rejected(self):
        """One governor, one attempt, one thread: a second thread
        touching a claimed governor gets a clear error instead of
        silently corrupted accounting."""
        governor = ResourceGovernor.from_limits(wall_seconds=100.0)
        governor.begin_attempt()
        failures = []

        def misuse():
            try:
                with governor.phase("main"):
                    pass
            except GovernorConcurrencyError as exc:
                failures.append(str(exc))

        worker = threading.Thread(target=misuse)
        worker.start()
        worker.join()
        assert len(failures) == 1
        assert "one governor per attempt" in failures[0]

    def test_same_thread_reuse_fine(self):
        governor = ResourceGovernor.from_limits(wall_seconds=100.0)
        governor.begin_attempt()
        with governor.phase("pre"):
            governor.check(iterations=1)
        governor.begin_attempt()
        with governor.phase("main"):
            governor.check(iterations=1)

    def test_service_builds_one_governor_per_attempt(self):
        """Concurrent service requests never share a governor: each
        attempt builds a fresh one from the spec, so parallel analyze
        calls with budgets succeed rather than tripping the guard."""
        service = make_service(
            governor=GovernorSpec(wall_seconds=60.0, check_stride=1))
        outcomes = []

        def request():
            status, body = service.handle(
                "POST", "/v1/analyze",
                {"program": WORKLOAD, "config": "M-2obj", "cache": False})
            outcomes.append((status, body.get("ok")))

        workers = [threading.Thread(target=request) for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert outcomes == [(200, True)] * 4


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_unknown_tenant_rejected_without_state(self):
        controller = AdmissionController(tenants=("alice",))
        with pytest.raises(AdmissionRejected) as info:
            controller.admit("mallory")
        assert info.value.code == "unknown-tenant"
        assert info.value.http_status == 403
        assert "mallory" not in controller.snapshot()["tenants"]

    def test_tenant_fair_share_enforced(self):
        controller = AdmissionController(max_inflight=4,
                                         tenants=("alice", "bob"))
        assert controller.tenant_inflight == 2
        tickets = [controller.admit("alice"), controller.admit("alice")]
        with pytest.raises(AdmissionRejected) as info:
            controller.admit("alice")
        assert info.value.code == "tenant-busy"
        assert info.value.retry_after is not None
        # the other tenant's share is untouched
        tickets.append(controller.admit("bob"))
        for ticket in tickets:
            ticket.release("ok")
        assert controller.inflight == 0

    def test_global_ceiling_enforced(self):
        controller = AdmissionController(max_inflight=2, tenant_inflight=2)
        tickets = [controller.admit("a"), controller.admit("b")]
        with pytest.raises(AdmissionRejected) as info:
            controller.admit("c")
        assert info.value.code == "server-busy"
        for ticket in tickets:
            ticket.release("ok")

    def test_release_is_idempotent(self):
        controller = AdmissionController()
        ticket = controller.admit("alice")
        ticket.release("ok")
        ticket.release("ok")
        snapshot = controller.snapshot()["tenants"]["alice"]
        assert snapshot["completed"] == 1
        assert controller.inflight == 0

    def test_drain_blocks_until_quiet_then_rejects(self):
        controller = AdmissionController()
        ticket = controller.admit("alice")
        release_timer = threading.Timer(0.05, ticket.release, args=("ok",))
        release_timer.start()
        assert controller.drain(timeout=5.0) is True
        with pytest.raises(AdmissionRejected) as info:
            controller.admit("alice")
        assert info.value.code == "draining"
        assert info.value.http_status == 503


# ----------------------------------------------------------------------
# Structured failures — no bare tracebacks on the wire
# ----------------------------------------------------------------------
class TestStructuredFailures:
    def test_crash_fault_is_classified_500(self):
        service = make_service()
        status, body = service.handle("POST", "/v1/analyze", {
            "program": WORKLOAD,
            "faults": "main-boundary:kind=crash:times=9"})
        assert status == 500
        error = body["error"]
        assert error["code"] == "internal"
        assert error["kind"] == "crash"
        assert "Traceback" not in json.dumps(body)

    def test_transient_exhaustion_is_503_with_provenance(self):
        service = make_service()
        status, body = service.handle("POST", "/v1/analyze", {
            "program": WORKLOAD,
            "faults": "main-boundary:kind=transient:times=99"})
        assert status == 503
        error = body["error"]
        assert error["code"] == "transient"
        assert error["retries"] == service.config.retry.max_retries
        assert len(error["backoff_delays"]) == error["retries"] + 1

    def test_transient_recovers_with_retry_provenance(self):
        service = make_service()
        status, body = service.handle("POST", "/v1/analyze", {
            "program": WORKLOAD,
            "faults": "main-boundary:kind=transient:times=1"})
        assert status == 200
        assert body["retries"] == 1
        assert len(body["backoff_delays"]) == 1
        assert body["analysis"]["status"] == "ok"

    def test_missing_program_is_400(self):
        service = make_service()
        status, body = service.handle("POST", "/v1/analyze", {})
        assert status == 400
        assert body["error"]["code"] == "bad-request"

    def test_unknown_config_is_400(self):
        service = make_service()
        status, body = service.handle("POST", "/v1/analyze", {
            "program": WORKLOAD, "config": "nonsense"})
        assert status == 400

    def test_unknown_endpoint_is_404(self):
        service = make_service()
        status, body = service.handle("GET", "/v2/nope")
        assert status == 404
        assert body["error"]["code"] == "not-found"

    def test_unknown_query_kind_is_400(self):
        service = make_service()
        status, body = service.handle("POST", "/v1/query", {
            "program": WORKLOAD, "query": {"kind": "taint"}})
        assert status == 400
        assert "taint" in body["error"]["message"]

    def test_request_faults_can_be_disabled(self):
        service = make_service(allow_request_faults=False)
        status, body = service.handle("POST", "/v1/analyze", {
            "program": WORKLOAD, "faults": "main-boundary:kind=crash"})
        assert status == 400
        assert "disabled" in body["error"]["message"]


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", "run-a")
        cache.put("b", "run-b")
        assert cache.get("a") == "run-a"  # refresh a
        cache.put("c", "run-c")  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == "run-a"
        assert cache.get("c") == "run-c"
        assert cache.evictions == 1

    def test_fault_requests_bypass_cache(self):
        service = make_service()
        service.handle("POST", "/v1/analyze", {"program": WORKLOAD})
        hits_before = service.cache.hits
        status, body = service.handle("POST", "/v1/analyze", {
            "program": WORKLOAD,
            "faults": "main-boundary:kind=transient:times=1"})
        assert status == 200
        assert body["cached"] is False
        assert service.cache.hits == hits_before  # no read either

    def test_exhausted_runs_not_cached(self):
        service = make_service(governor=GovernorSpec(check_stride=1))
        body_args = {
            "program": {"kind": "profile", "name": "luindex", "scale": 0.4},
            "config": "M-3obj", "deadline_seconds": 0.005,
        }
        status, body = service.handle("POST", "/v1/analyze", dict(body_args))
        assert status == 200
        if body["analysis"]["status"] != "ok":
            assert service.cache.stats()["entries"] == 0

    def test_zero_capacity_disables_caching(self):
        service = make_service(cache_size=0)
        service.handle("POST", "/v1/analyze", {"program": WORKLOAD})
        _, body = service.handle("POST", "/v1/analyze",
                                 {"program": WORKLOAD})
        assert body["cached"] is False


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
class TestQueries:
    @pytest.fixture(scope="class")
    def service(self):
        return make_service()

    def test_points_to(self, service):
        status, body = service.handle("POST", "/v1/query", {
            "program": WORKLOAD,
            "query": {"kind": "points-to", "method": "<Main>.main", "var": "a"}})
        assert status == 200
        answer = body["answer"]
        assert answer["count"] >= 1
        assert all(len(pair) == 2 for pair in answer["objects"])

    def test_alias_pair_and_report(self, service):
        status, body = service.handle("POST", "/v1/query", {
            "program": WORKLOAD,
            "query": {"kind": "alias", "method": "<Main>.main",
                      "var_a": "a", "var_b": "zf"}})
        assert status == 200
        assert body["answer"]["may_alias"] is True
        status2, body2 = service.handle("POST", "/v1/query", {
            "program": WORKLOAD,
            "query": {"kind": "alias", "method": "<Main>.main"}})
        assert status2 == 200
        assert body2["answer"]["variable_count"] >= 2

    def test_callgraph_and_casts(self, service):
        _, cg = service.handle("POST", "/v1/query", {
            "program": WORKLOAD, "query": {"kind": "callgraph"}})
        assert cg["answer"]["edge_count"] >= 1
        _, casts = service.handle("POST", "/v1/query", {
            "program": WORKLOAD, "query": {"kind": "casts"}})
        assert set(casts["answer"]) == {"may_fail", "safe"}

    def test_query_reuses_cached_analysis(self, service):
        _, first = service.handle("POST", "/v1/query", {
            "program": WORKLOAD, "query": {"kind": "callgraph"}})
        assert first["cached"] is True  # prior tests populated the entry


# ----------------------------------------------------------------------
# HTTP end to end: in-process daemon + stdlib client
# ----------------------------------------------------------------------
class TestHTTPEndToEnd:
    @pytest.fixture()
    def daemon(self):
        daemon = ServeDaemon(ServiceConfig(port=0, tenants=("alice", "bob")))
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        try:
            yield daemon
        finally:
            if not daemon.drained:
                daemon.shutdown()
            daemon.server_close()
            thread.join(timeout=10.0)

    def _client(self, daemon, **kwargs):
        host, port = daemon.address
        return ServeClient(f"http://{host}:{port}", **kwargs)

    def test_analyze_and_health_over_http(self, daemon):
        client = self._client(daemon, tenant="alice")
        health = client.health()
        assert health["status"] == "serving"
        out = client.analyze(WORKLOAD, config="M-2obj")
        direct = run_analysis(parse_program(WORKLOAD), "M-2obj")
        assert canonical_json(out["analysis"]["result"]) == \
            canonical_json(deterministic_result(direct))

    def test_rejections_surface_as_serve_errors(self, daemon):
        client = self._client(daemon, tenant="mallory")
        with pytest.raises(ServeError) as info:
            client.analyze(WORKLOAD)
        assert info.value.status == 403
        assert info.value.code == "unknown-tenant"

    def test_unparseable_body_is_structured_400(self, daemon):
        host, port = daemon.address
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/analyze", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            urllib.request.urlopen(request, timeout=10.0)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            body = json.loads(exc.read().decode("utf-8"))
            assert exc.code == 400
            assert body["error"]["code"] == "bad-request"

    def test_drain_stops_admission_then_serving(self, daemon):
        client = self._client(daemon, tenant="alice")
        client.analyze(WORKLOAD)
        assert daemon.drain(timeout=10.0) is True
        assert daemon.drained
        status, body = client.raw("POST", "/v1/analyze",
                                  {"program": WORKLOAD, "tenant": "alice"})
        # after shutdown the socket may refuse outright (transport) or,
        # if a listener thread lingers, answer 503 draining
        assert status in (0, 503)

    def test_stats_accounting(self, daemon):
        client = self._client(daemon, tenant="bob")
        client.analyze(WORKLOAD)
        stats = client.stats()
        tenants = stats["admission"]["tenants"]
        assert tenants["bob"]["admitted"] >= 1
        assert tenants["bob"]["outcomes"].get("ok", 0) >= 1
