"""Deterministic fault injection: every injection point, every fault
kind, and every degradation path it triggers — on both pts backends."""

import pytest

from repro import faults
from repro.analysis.pipeline import (
    coarser_sensitivity,
    degradation_chain,
    next_rung,
    run_analysis,
    run_pre_analysis,
)
from repro.core.fpg import FPGIntegrityError
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedExhaustion,
    TransientFault,
)
from repro.interp import interpret
from repro.pta.bitset import BACKEND_NAMES
from repro.resources import TimeBudgetExceeded

from tests.test_soundness_oracle import assert_trace_covered


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test leaves the process-wide plan uninstalled."""
    yield
    faults.uninstall()


class TestFaultSpecParsing:
    def test_rejects_unknown_point(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultSpec(point="gc-pause")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(point="main-boundary", kind="explode")

    def test_parse_spec_string(self):
        plan = FaultPlan.parse(
            "main-boundary:kind=crash,solve-iteration:at=64:times=2")
        assert plan.specs["main-boundary"].kind == "crash"
        assert plan.specs["solve-iteration"].at == 64
        assert plan.specs["solve-iteration"].times == 2

    def test_parse_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan.parse("main-boundary,main-boundary")

    def test_parse_rejects_malformed_field(self):
        with pytest.raises(ValueError, match="malformed fault field"):
            FaultPlan.parse("main-boundary:kind")

    def test_stride_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            FaultPlan([], stride=3)

    def test_from_env(self):
        environ = {"REPRO_FAULTS": "merge-boundary:times=2",
                   "REPRO_FAULTS_SEED": "7"}
        plan = FaultPlan.from_env(environ)
        assert plan.specs["merge-boundary"].times == 2
        assert plan.seed == 7
        assert plan.stride == 1
        assert FaultPlan.from_env({}) is None


class TestFiringSemantics:
    def test_times_limits_activations(self):
        plan = FaultPlan([FaultSpec(point="main-boundary", times=2)])
        for _ in range(2):
            with pytest.raises(InjectedExhaustion):
                plan.fire("main-boundary")
        plan.fire("main-boundary")  # quiet now
        assert plan.remaining("main-boundary") == 0

    def test_unlimited_with_negative_times(self):
        plan = FaultPlan([FaultSpec(point="main-boundary", times=-1)])
        for _ in range(5):
            with pytest.raises(InjectedExhaustion):
                plan.fire("main-boundary")
        assert plan.remaining("main-boundary") == -1

    def test_unarmed_points_are_noops(self):
        plan = FaultPlan([])
        plan.fire("main-boundary")
        plan.check_iteration(10**6)
        assert plan.spike_bytes() == 0

    def test_kinds_raise_their_exception(self):
        for kind, exc_type in (("exhaust", InjectedExhaustion),
                               ("transient", TransientFault),
                               ("crash", InjectedCrash)):
            plan = FaultPlan([FaultSpec(point="pre-boundary", kind=kind)])
            with pytest.raises(exc_type) as info:
                plan.fire("pre-boundary", phase="pre")
            assert info.value.point == "pre-boundary"
            assert info.value.phase == "pre"

    def test_injected_exhaustion_is_budget_expiry(self):
        assert issubclass(InjectedExhaustion, TimeBudgetExceeded)

    def test_probability_is_seed_deterministic(self):
        def firings(seed):
            plan = FaultPlan(
                [FaultSpec(point="main-boundary", times=-1, probability=0.5)],
                seed=seed)
            fired = []
            for i in range(32):
                try:
                    plan.fire("main-boundary")
                    fired.append(False)
                except InjectedExhaustion:
                    fired.append(True)
            return fired

        assert firings(1) == firings(1)
        assert firings(1) != firings(2)
        assert any(firings(1)) and not all(firings(1))

    def test_check_iteration_honors_at_and_phase(self):
        plan = FaultPlan([FaultSpec(point="solve-iteration", at=10,
                                    phase="main")])
        plan.check_iteration(9, phase="main")       # below threshold
        plan.check_iteration(10, phase="pre")       # wrong phase
        with pytest.raises(InjectedExhaustion) as info:
            plan.check_iteration(10, phase="main")
        assert info.value.iterations == 10

    def test_log_records_firings(self):
        plan = FaultPlan([FaultSpec(point="memory-spike", bytes=123)])
        assert plan.spike_bytes() == 123
        assert plan.log == [("memory-spike", "bytes=123")]

    def test_spike_is_sticky_like_a_watermark(self):
        # peak-RSS never comes back down, so neither does the spike:
        # once the activations run out the plan keeps reporting the
        # high-water mark
        plan = FaultPlan([FaultSpec(point="memory-spike", times=1,
                                    bytes=1 << 30)])
        assert plan.spike_bytes() == 1 << 30
        assert plan.spike_bytes() == 1 << 30  # activation spent, still high
        assert plan.remaining("memory-spike") == 0
        assert plan.spiked_bytes == 1 << 30  # no-consume property

    def test_spike_logs_only_on_growth(self):
        plan = FaultPlan([FaultSpec(point="memory-spike", times=-1,
                                    bytes=1 << 20)])
        plan.spike_bytes()
        plan.spike_bytes()
        plan.spike_bytes()
        assert plan.log == [("memory-spike", f"bytes={1 << 20}")]

    def test_spiked_bytes_does_not_consume_activations(self):
        plan = FaultPlan([FaultSpec(point="memory-spike", times=1,
                                    bytes=1 << 20)])
        assert plan.spiked_bytes == 0
        assert plan.remaining("memory-spike") == 1  # peeking is free
        assert plan.spike_bytes() == 1 << 20
        assert plan.spiked_bytes == 1 << 20


class TestActivation:
    def test_active_scopes_and_restores(self):
        outer = FaultPlan([])
        faults.install(outer)
        inner = FaultPlan([])
        with faults.active(inner):
            assert faults.current_plan() is inner
        assert faults.current_plan() is outer

    def test_env_plan_keeps_state_across_queries(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "main-boundary:times=1")
        first = faults.current_plan()
        assert first is faults.current_plan()  # memoized, not re-parsed
        with pytest.raises(InjectedExhaustion):
            first.fire("main-boundary")
        # the one activation is spent process-wide
        faults.current_plan().fire("main-boundary")

    def test_env_change_invalidates_memo(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "main-boundary")
        first = faults.current_plan()
        monkeypatch.setenv("REPRO_FAULTS", "pre-boundary")
        second = faults.current_plan()
        assert second is not first
        assert "pre-boundary" in second.specs


@pytest.mark.parametrize("backend", BACKEND_NAMES)
class TestDegradationPaths:
    """Every injection point triggers its degradation path, and the
    rescued result stays sound."""

    def test_main_boundary_steps_down_ladder(self, tiny_program, backend):
        plan = FaultPlan([FaultSpec(point="main-boundary", times=1)])
        with faults.active(plan):
            run = run_analysis(tiny_program, f"M-2obj@{backend}",
                               degrade=True)
        assert run.degraded
        assert run.degraded_from == f"M-2obj@{backend}"
        assert run.config.name == f"M-2type@{backend}"
        assert [a.config for a in run.attempts] == [
            f"M-2obj@{backend}", f"M-2type@{backend}"]
        assert run.attempts[0].cause == "time"
        assert not run.attempts[1].cause

    def test_merge_boundary_drops_mahjong_heap(self, tiny_program, backend):
        plan = FaultPlan([FaultSpec(point="merge-boundary", times=1)])
        with faults.active(plan):
            run = run_analysis(tiny_program, f"M-2obj@{backend}",
                               degrade=True)
        assert run.degraded
        # pre-phase exhaustion keeps the sensitivity, drops "M-"
        assert run.config.name == f"2obj@{backend}"
        assert run.attempts[0].phase == "merge"

    @pytest.mark.parametrize("point,phase", [("pre-boundary", "pre"),
                                             ("fpg-boundary", "fpg")])
    def test_pre_and_fpg_boundaries(self, tiny_program, backend, point,
                                    phase):
        plan = FaultPlan([FaultSpec(point=point, times=1)])
        with faults.active(plan):
            run = run_analysis(tiny_program, f"M-2obj@{backend}",
                               degrade=True)
        assert run.degraded
        assert run.config.name == f"2obj@{backend}"
        assert run.attempts[0].phase == phase

    def test_solve_iteration_fault(self, tiny_program, backend):
        plan = FaultPlan(
            [FaultSpec(point="solve-iteration", at=2, phase="main")],
            stride=1)
        with faults.active(plan):
            run = run_analysis(tiny_program, f"2obj@{backend}",
                               degrade=True)
        assert run.degraded
        assert run.attempts[0].cause == "time"
        assert "solve-iteration" in run.attempts[0].detail

    def test_memory_spike_fault(self, tiny_program, backend):
        from repro.analysis.governor import ResourceGovernor

        plan = FaultPlan([FaultSpec(point="memory-spike", times=1)])
        governor = ResourceGovernor.from_limits(memory_mb=1 << 14,
                                                check_stride=1)
        with faults.active(plan):
            run = run_analysis(tiny_program, f"2obj@{backend}",
                               governor=governor, degrade=True)
        # the 1 TiB spike blows the 16 GiB budget exactly once
        assert run.degraded
        assert run.attempts[0].cause == "memory"

    def test_fpg_corrupt_detected_and_rescued(self, tiny_program, backend):
        plan = FaultPlan([FaultSpec(point="fpg-corrupt", times=1)])
        with faults.active(plan):
            run = run_analysis(tiny_program, f"M-2obj@{backend}",
                               degrade=True)
        assert run.degraded
        assert run.config.name == f"2obj@{backend}"
        assert run.attempts[0].cause == "corrupt"
        assert run.attempts[0].phase == "fpg"

    def test_fpg_corrupt_raises_without_ladder(self, tiny_program, backend):
        plan = FaultPlan([FaultSpec(point="fpg-corrupt", times=1)])
        with faults.active(plan):
            with pytest.raises(FPGIntegrityError):
                run_pre_analysis(tiny_program, pts_backend=backend)

    def test_exhaust_every_rung(self, tiny_program, backend):
        # enough activations to burn M-3obj and the whole chain below it
        chain_length = 1 + len(degradation_chain("M-3obj"))
        plan = FaultPlan([FaultSpec(point="main-boundary",
                                    times=chain_length)])
        with faults.active(plan):
            run = run_analysis(tiny_program, "M-3obj",
                               pts_backend=backend, degrade=True)
        assert run.timed_out
        assert not run.succeeded
        assert run.degraded_from == "M-3obj"
        assert [a.config for a in run.attempts] == [
            "M-3obj", "M-2obj", "M-2type", "ci"]

    def test_transient_and_crash_escape_the_ladder(self, tiny_program,
                                                   backend):
        for kind, exc_type in (("transient", TransientFault),
                               ("crash", InjectedCrash)):
            plan = FaultPlan([FaultSpec(point="main-boundary", kind=kind)])
            with faults.active(plan):
                with pytest.raises(exc_type):
                    run_analysis(tiny_program, f"2obj@{backend}",
                                 degrade=True)

    def test_degraded_result_stays_sound(self, tiny_program, backend):
        trace = interpret(tiny_program)
        plan = FaultPlan([FaultSpec(point="main-boundary", times=1)])
        with faults.active(plan):
            run = run_analysis(tiny_program, f"M-2obj@{backend}",
                               degrade=True)
        assert run.degraded
        assert_trace_covered(tiny_program, trace, run.result)

    def test_determinism_under_fixed_seed(self, tiny_program, backend):
        def rescued_config():
            plan = FaultPlan(
                [FaultSpec(point="main-boundary", times=1),
                 FaultSpec(point="fpg-corrupt", times=1)],
                seed=42)
            with faults.active(plan):
                run = run_analysis(tiny_program, f"M-2obj@{backend}",
                                   degrade=True)
            return run.config.name, [a.config for a in run.attempts], plan.log

        assert rescued_config() == rescued_config()


class TestLadderShape:
    def test_coarser_sensitivity_steps(self):
        assert coarser_sensitivity("3obj") == "2obj"
        assert coarser_sensitivity("2obj") == "2type"
        assert coarser_sensitivity("3type") == "2type"
        assert coarser_sensitivity("2type") == "ci"
        assert coarser_sensitivity("3cs") == "2cs"
        assert coarser_sensitivity("2cs") == "ci"
        assert coarser_sensitivity("ci") is None
        assert coarser_sensitivity("weird") is None

    def test_next_rung_main_phase(self):
        assert next_rung("M-3obj", "main") == "M-2obj"
        assert next_rung("M-2obj", "main") == "M-2type"
        assert next_rung("M-2type", "main") == "ci"
        assert next_rung("T-2obj", "main") == "T-2type"
        assert next_rung("2obj", "main") == "2type"
        assert next_rung("ci", "main") is None

    def test_next_rung_pre_phase_drops_heap(self):
        for phase in ("pre", "fpg", "merge"):
            assert next_rung("M-2obj", phase) == "2obj"
        # non-mahjong configs have no pre-analysis to drop
        assert next_rung("2obj", "pre") == "2type"

    def test_backend_suffix_carried(self):
        assert next_rung("M-2obj@set", "main") == "M-2type@set"
        assert next_rung("M-2obj@bitset", "merge") == "2obj@bitset"
        assert next_rung("M-2type@set", "main") == "ci@set"

    def test_degradation_chain(self):
        assert degradation_chain("M-3obj") == ["M-2obj", "M-2type", "ci"]
        assert degradation_chain("2cs") == ["ci"]
        assert degradation_chain("ci") == []
