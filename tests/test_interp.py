"""Unit tests for the concrete reference interpreter."""

from repro.frontend import parse_program
from repro.interp import interpret


def trace_of(source, **kwargs):
    return interpret(parse_program(source), **kwargs)


class TestBasics:
    def test_allocation_and_copy(self):
        trace = trace_of("main { a = new Object(); b = a; }")
        assert trace.var_bindings[("<Main>.main", "a")] == {1}
        assert trace.var_bindings[("<Main>.main", "b")] == {1}

    def test_field_store_load(self):
        src = """
        class A { field f: Object; }
        main { a = new A(); v = new Object(); a.f = v; w = a.f; }
        """
        trace = trace_of(src)
        assert trace.heap_stores == {(1, "f", 2)}
        assert trace.var_bindings[("<Main>.main", "w")] == {2}

    def test_flow_sensitive_load_before_store_sees_nothing(self):
        src = """
        class A { field f: Object; }
        main { a = new A(); w = a.f; v = new Object(); a.f = v; }
        """
        trace = trace_of(src)
        assert ("<Main>.main", "w") not in trace.var_bindings

    def test_per_object_fields(self):
        src = """
        class A { field f: Object; }
        main {
          a = new A(); b = new A();
          v = new Object(); a.f = v;
          w = b.f;
        }
        """
        trace = trace_of(src)
        assert ("<Main>.main", "w") not in trace.var_bindings

    def test_static_fields(self):
        src = """
        class A { static field sf: Object; }
        main { v = new Object(); A::sf = v; w = A::sf; }
        """
        trace = trace_of(src)
        assert trace.var_bindings[("<Main>.main", "w")] == {1}

    def test_null_assignment_unbinds(self):
        src = """
        class A { field f: Object; }
        main { a = new A(); a = null; a.f = a; }
        """
        trace = trace_of(src)
        assert trace.heap_stores == set()


class TestCallsAndDispatch:
    def test_virtual_dispatch_concrete(self):
        src = """
        class A { method who() { return this; } }
        class B extends A { method who() { return this; } }
        main { x = new B(); r = x.who(); }
        """
        trace = trace_of(src)
        assert trace.call_edges == {(1, "B.who")}
        assert trace.var_bindings[("<Main>.main", "r")] == {1}

    def test_return_value_and_args(self):
        src = """
        class U { static method id(x) { return x; } }
        main { v = new Object(); r = U::id(v); }
        """
        trace = trace_of(src)
        assert trace.call_edges == {(1, "U.id")}
        assert trace.var_bindings[("U.id", "x")] == {1}
        assert trace.var_bindings[("<Main>.main", "r")] == {1}

    def test_recursion_bounded(self):
        src = """
        class A { method loop() { r = this.loop(); return r; } }
        main { a = new A(); a.loop(); }
        """
        trace = trace_of(src, max_depth=10)
        assert trace.truncated
        assert (2, "A.loop") in trace.call_edges

    def test_call_on_null_skipped(self):
        src = """
        class A { method m() { return this; } }
        main { a = null; a.m(); }
        """
        trace = trace_of(src)
        assert trace.call_edges == set()


class TestCastsAndExceptions:
    def test_successful_cast_binds(self):
        src = """
        class A { }
        class B extends A { }
        main { b = new B(); x = (A) b; }
        """
        trace = trace_of(src)
        assert trace.failed_casts == set()
        assert trace.var_bindings[("<Main>.main", "x")] == {1}

    def test_failed_cast_recorded(self):
        src = """
        class A { }
        class B extends A { }
        main { a = new A(); x = (B) a; }
        """
        trace = trace_of(src)
        assert trace.failed_casts == {1}
        assert ("<Main>.main", "x") not in trace.var_bindings

    def test_throw_and_propagation(self):
        src = """
        class Err { }
        class W { method boom() { e = new Err(); throw e; return this; } }
        main { w = new W(); w.boom(); }
        """
        trace = trace_of(src)
        # `new Err()` inside W.boom is lowered first, so it is site 1
        assert trace.exceptions["W.boom"] == {1}
        assert trace.exceptions["<Main>.main"] == {1}

    def test_catch_binds_matching(self):
        src = """
        class Err { }
        class Other { }
        class W { method boom() { e = new Err(); throw e; return this; } }
        main {
          w = new W();
          w.boom();
          caught = catch (Err);
          missed = catch (Other);
        }
        """
        trace = trace_of(src)
        assert trace.var_bindings[("<Main>.main", "caught")] == {1}
        assert ("<Main>.main", "missed") not in trace.var_bindings
