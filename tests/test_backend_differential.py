"""Differential tests: bitset vs legacy set points-to backends.

The two representations must be observationally identical — same
points-to sets, call graphs, may-fail-cast verdicts, and (through the
pre-analysis) bit-identical MAHJONG merge decisions — on the full
pipeline, on real workloads, and on arbitrary generated programs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.analysis import run_analysis, run_pre_analysis
from repro.analysis.config import parse_config
from repro.clients import check_casts
from repro.pta.bitset import BACKEND_BITSET, BACKEND_SET
from repro.pta.solver import Solver
from repro.workloads import TINY, generate, load_profile

from tests.program_strategies import ir_programs

CONFIGS = ["ci", "2cs", "2obj", "2type", "T-2type", "M-2obj"]


def _all_var_pts(program, result):
    facts = {}
    for method in program.all_methods():
        qname = method.qualified_name
        for var in method.local_variables():
            ids = result.var_points_to_ids(qname, var)
            if ids:
                facts[(qname, var)] = ids
    return facts


def _object_identity(result, obj: int):
    """Backend-independent identity of an interned object id."""
    return (result.object_site_key(obj), result.object_heap_context(obj))


def _canonical_casts(result):
    return {
        (site, cls, frozenset(_object_identity(result, o) for o in objs))
        for site, cls, objs in result.cast_records()
    }


def assert_equivalent(program, bit_result, set_result):
    """The full observational-equivalence battery.

    Interned object ids are solver-internal and may differ between runs,
    so per-variable sets are compared through site-key/heap-context
    identities; counts and graphs compare directly.
    """
    assert bit_result.pts_backend == BACKEND_BITSET
    assert set_result.pts_backend == BACKEND_SET
    assert bit_result.object_count == set_result.object_count
    assert bit_result.reachable_methods() == set_result.reachable_methods()
    assert bit_result.call_graph_edges() == set_result.call_graph_edges()
    assert (bit_result.context_sensitive_edge_count()
            == set_result.context_sensitive_edge_count())
    assert bit_result.call_site_targets() == set_result.call_site_targets()

    bit_vars = _all_var_pts(program, bit_result)
    set_vars = _all_var_pts(program, set_result)
    assert bit_vars.keys() == set_vars.keys()
    for key in bit_vars:
        bit_ids = {_object_identity(bit_result, o) for o in bit_vars[key]}
        set_ids = {_object_identity(set_result, o) for o in set_vars[key]}
        assert bit_ids == set_ids, key

    assert _canonical_casts(bit_result) == _canonical_casts(set_result)
    bit_casts = check_casts(bit_result)
    set_casts = check_casts(set_result)
    assert bit_casts.may_fail_sites == set_casts.may_fail_sites
    assert bit_casts.safe_sites == set_casts.safe_sites

    bit_stats = bit_result.stats()
    set_stats = set_result.stats()
    assert bit_stats["pts_facts"] == set_stats["pts_facts"]
    assert bit_stats["iterations"] == set_stats["iterations"]


class TestPipelineDifferential:
    @pytest.fixture(scope="class")
    def programs(self, figure1_program):
        return {
            "figure1": figure1_program,
            "tiny": generate(TINY),
            "luindex": load_profile("luindex", 0.25),
        }

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("name", ["figure1", "tiny", "luindex"])
    def test_full_pipeline_matches(self, programs, name, config):
        program = programs[name]
        bit_run = run_analysis(program, config, pts_backend=BACKEND_BITSET)
        set_run = run_analysis(program, config, pts_backend=BACKEND_SET)
        assert_equivalent(program, bit_run.result, set_run.result)

    def test_backend_suffix_selects_backend(self, figure1_program, monkeypatch):
        monkeypatch.delenv("REPRO_PTS_BACKEND", raising=False)
        config = parse_config("2obj@set")
        assert config.pts_backend == BACKEND_SET
        run = run_analysis(figure1_program, "2obj@set")
        assert run.result.pts_backend == BACKEND_SET
        run = run_analysis(figure1_program, "2obj")
        assert run.result.pts_backend == BACKEND_BITSET

    def test_env_var_selects_backend(self, figure1_program, monkeypatch):
        monkeypatch.setenv("REPRO_PTS_BACKEND", BACKEND_SET)
        result = Solver(figure1_program).solve()
        assert result.pts_backend == BACKEND_SET


class TestGeneratedPrograms:
    @given(ir_programs())
    @settings(max_examples=30, deadline=None)
    def test_solver_matches_on_random_programs(self, program):
        bit_result = Solver(program, pts_backend=BACKEND_BITSET).solve()
        set_result = Solver(program, pts_backend=BACKEND_SET).solve()
        assert_equivalent(program, bit_result, set_result)

    @given(ir_programs())
    @settings(max_examples=25, deadline=None)
    def test_merge_decisions_identical(self, program):
        """The tentpole invariant for MAHJONG: the pre-analysis backend
        must not perturb the merged object map at all."""
        bit_pre = run_pre_analysis(program, pts_backend=BACKEND_BITSET)
        set_pre = run_pre_analysis(program, pts_backend=BACKEND_SET)
        assert bit_pre.merge.mom == set_pre.merge.mom
        assert bit_pre.result.pts_backend == BACKEND_BITSET
        assert set_pre.result.pts_backend == BACKEND_SET
