"""The :mod:`repro.obs` tracing layer: span structure, sinks, the
Chrome exporter, summarization, process-wide scoping, and the pipeline
integration (phase/attempt/stride coverage, per-attempt perf
attribution, and the tracing-changes-nothing differential)."""

from __future__ import annotations

import io
import json

import pytest

from repro import faults, obs
from repro.analysis.governor import PhaseBudget, ResourceGovernor
from repro.analysis.pipeline import run_analysis
from repro.faults import FaultPlan, FaultSpec
from repro.obs import (
    InMemorySink,
    Instant,
    JsonlSink,
    PerfRecorder,
    SpanBegin,
    SpanEnd,
    Tracer,
)
from repro.pta.bitset import BACKEND_NAMES


class FakeClock:
    """Injectable monotonic clock for exact-duration assertions."""

    def __init__(self) -> None:
        self.t = 0.0

    def advance(self, seconds: float) -> None:
        self.t += seconds

    def __call__(self) -> float:
        return self.t


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    obs.uninstall()


def _traced(clock=None):
    sink = InMemorySink()
    tracer = Tracer(sinks=(sink,), **({"clock": clock} if clock else {}))
    return tracer, sink


class TestSpanStructure:
    def test_nesting_builds_tree(self):
        tracer, sink = _traced()
        outer = tracer.begin("analysis", analysis="M-2obj")
        inner = tracer.begin("phase:pre")
        tracer.instant("fault", point="pre-boundary")
        tracer.end(inner)
        tracer.end(outer)
        assert len(sink.roots) == 1
        root = sink.roots[0]
        assert root.name == "analysis"
        assert root.attrs == {"analysis": "M-2obj"}
        assert [c.name for c in root.children] == ["phase:pre"]
        assert sink.instants[0].span_id == inner
        assert sink.span_names() == ["analysis", "phase:pre"]

    def test_span_cm_merges_begin_and_end_attrs(self):
        tracer, sink = _traced()
        with tracer.span("solve", backend="bitset") as attrs:
            attrs["iterations"] = 17
        (span,) = sink.find("solve")
        assert span.closed
        assert span.attrs == {"backend": "bitset", "iterations": 17}

    def test_escaping_exception_stamps_error_and_closes(self):
        tracer, sink = _traced()
        with pytest.raises(ValueError):
            with tracer.span("phase:main"):
                raise ValueError("boom")
        (span,) = sink.find("phase:main")
        assert span.closed
        assert span.attrs["error"] == "ValueError"

    def test_ending_outer_span_closes_inner_first(self):
        tracer, sink = _traced()
        outer = tracer.begin("a")
        tracer.begin("b")
        tracer.end(outer)  # b must close before a for well-nestedness
        kinds = [(e.kind, e.name) for e in sink.events]
        assert kinds == [("span_begin", "a"), ("span_begin", "b"),
                         ("span_end", "b"), ("span_end", "a")]

    def test_close_flushes_open_spans_outermost_last(self):
        tracer, sink = _traced()
        tracer.begin("a")
        tracer.begin("b")
        tracer.close()
        ends = [e.name for e in sink.events if isinstance(e, SpanEnd)]
        assert ends == ["b", "a"]
        assert all(span.closed for root in sink.roots
                   for span in root.walk())

    def test_instant_outside_any_span_has_no_parent(self):
        tracer, sink = _traced()
        tracer.instant("fault", point="main-boundary")
        assert sink.instants[0].span_id is None

    def test_end_unknown_span_is_noop(self):
        tracer, sink = _traced()
        assert tracer.end(999) == 0.0
        assert sink.events == []

    def test_durations_come_from_the_injected_clock(self):
        clock = FakeClock()
        tracer, sink = _traced(clock)
        span_id = tracer.begin("solve")
        clock.advance(2.5)
        assert tracer.end(span_id) == pytest.approx(2.5)
        (span,) = sink.find("solve")
        assert span.duration == pytest.approx(2.5)

    def test_metrics_derive_span_timers(self):
        clock = FakeClock()
        recorder = PerfRecorder()
        tracer = Tracer(metrics=recorder, clock=clock)
        with tracer.span("phase:main"):
            clock.advance(1.5)
        with tracer.span("phase:main"):
            clock.advance(0.5)
        assert recorder.timers["span.phase:main"] == pytest.approx(2.0)


class TestJsonlSink:
    def _emit_sample(self, tracer):
        with tracer.span("analysis", analysis="ci") as attrs:
            tracer.instant("fault", point="main-boundary", kind="crash")
            attrs["outcome"] = "ok"

    def test_round_trips_through_typed_events(self):
        buffer = io.StringIO()
        mem = InMemorySink()
        tracer = Tracer(sinks=(JsonlSink(buffer), mem))
        self._emit_sample(tracer)
        tracer.close()
        loaded = JsonlSink.load(io.StringIO(buffer.getvalue()))
        assert [e.as_dict() for e in loaded] == \
            [e.as_dict() for e in mem.events]
        assert [e.kind for e in loaded] == \
            ["span_begin", "instant", "span_end"]

    def test_path_target_is_owned_and_loadable(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = Tracer(sinks=(JsonlSink(str(path)),))
        self._emit_sample(tracer)
        tracer.close()
        events = JsonlSink.load(str(path))
        assert isinstance(events[0], SpanBegin)
        assert isinstance(events[-1], SpanEnd)
        assert events[-1].attrs == {"outcome": "ok"}


class TestChromeExport:
    def _sample_events(self):
        clock = FakeClock()
        tracer, sink = _traced(clock)
        with tracer.span("analysis"):
            clock.advance(0.1)
            with tracer.span("phase:main", backend="bitset") as attrs:
                clock.advance(0.4)
                tracer.instant("governor.exhausted", resource="memory")
                attrs["iterations"] = 3
            clock.advance(0.1)
        return sink.events

    def test_export_shape_and_validation(self):
        payload = obs.to_chrome_trace(self._sample_events())
        assert obs.validate_chrome_trace(payload) == []
        phases = [e["ph"] for e in payload["traceEvents"]]
        assert phases.count("M") == 1
        assert phases.count("X") == 2
        assert phases.count("i") == 1
        main = next(e for e in payload["traceEvents"]
                    if e["name"] == "phase:main")
        # begin attrs and end attrs merge into args; seconds become µs
        assert main["args"] == {"backend": "bitset", "iterations": 3}
        assert main["dur"] == pytest.approx(0.4e6)

    def test_unclosed_span_exports_as_B_and_validates(self):
        tracer, sink = _traced()
        tracer.begin("analysis")
        payload = obs.to_chrome_trace(sink.events)
        assert obs.validate_chrome_trace(payload) == []
        assert [e["ph"] for e in payload["traceEvents"]] == ["M", "B"]

    def test_validator_rejects_malformed_payloads(self):
        assert obs.validate_chrome_trace(42)
        assert obs.validate_chrome_trace({"notTraceEvents": []})
        assert obs.validate_chrome_trace({"traceEvents": []}) == \
            ["trace contains no events"]
        errors = obs.validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "Q", "ts": 0},
            {"name": "", "ph": "i", "ts": -1},
            {"name": "y", "ph": "X", "ts": 0},
        ]})
        assert len(errors) == 4  # bad phase, bad name, bad ts, missing dur

    def test_events_from_trace_reconstructs_nesting(self):
        from repro.obs.chrome import events_from_trace

        payload = obs.to_chrome_trace(self._sample_events())
        rebuilt = events_from_trace(payload)
        begins = {e.name: e for e in rebuilt if isinstance(e, SpanBegin)}
        assert set(begins) == {"analysis", "phase:main"}
        assert begins["phase:main"].parent_id == begins["analysis"].span_id
        assert begins["phase:main"].attrs["backend"] == "bitset"
        instants = [e for e in rebuilt if isinstance(e, Instant)]
        assert [i.name for i in instants] == ["governor.exhausted"]

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(self._sample_events(), str(path))
        payload = obs.load_trace_file(str(path))
        assert obs.validate_chrome_trace(payload) == []
        assert payload["otherData"]["producer"] == "repro.obs"

    def test_load_trace_file_detects_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._sample_events():
                handle.write(json.dumps(event.as_dict()) + "\n")
        payload = obs.load_trace_file(str(path))
        assert isinstance(payload, list)
        assert payload[0]["kind"] == "span_begin"


class TestSummary:
    def test_summary_covers_spans_attempts_and_instants(self):
        clock = FakeClock()
        tracer, sink = _traced(clock)
        with tracer.span("analysis"):
            attempt = tracer.begin("attempt", config="2obj", index=0)
            clock.advance(1.0)
            tracer.instant("governor.exhausted", resource="memory")
            tracer.end(attempt, outcome="exhausted", cause="memory",
                       phase="main")
            attempt = tracer.begin("attempt", config="2type", index=1)
            clock.advance(0.5)
            tracer.end(attempt, outcome="ok")
        text = obs.summarize_events(sink.events)
        assert "degradation-ladder attempts:" in text
        assert "2obj: exhausted (memory in main)" in text
        assert "2type: ok" in text
        assert "governor.exhausted x1" in text
        assert "2 spans" not in text  # 3 spans total (analysis + 2 attempts)

    def test_summarize_trace_payload_accepts_chrome_form(self):
        tracer, sink = _traced()
        with tracer.span("solve", backend="set"):
            pass
        text = obs.summarize_trace_payload(obs.to_chrome_trace(sink.events))
        assert "solve" in text


class TestProcessWideScoping:
    def test_install_returns_previous(self):
        first, second = Tracer(), Tracer()
        assert obs.install(first) is None
        assert obs.current_tracer() is first
        assert obs.install(second) is first
        assert obs.uninstall() is second
        assert obs.current_tracer() is None

    def test_active_scopes_and_restores(self):
        outer, inner = Tracer(), Tracer()
        obs.install(outer)
        with obs.active(inner) as scoped:
            assert scoped is inner
            assert obs.current_tracer() is inner
        assert obs.current_tracer() is outer


@pytest.mark.parametrize("backend", BACKEND_NAMES)
class TestPipelineIntegration:
    def test_trace_covers_all_phases_and_solver_windows(self, tiny_program,
                                                        backend):
        sink = InMemorySink()
        run = run_analysis(tiny_program, "M-2obj", pts_backend=backend,
                           tracer=Tracer(sinks=(sink,)))
        assert run.succeeded
        names = sink.span_names()
        for expected in ("analysis", "attempt", "phase:pre", "phase:fpg",
                         "phase:merge", "phase:main", "solve", "stride"):
            assert expected in names, f"missing {expected} span"
        (attempt,) = sink.find("attempt")
        assert attempt.attrs["config"] == "M-2obj"
        assert attempt.attrs["outcome"] == "ok"
        # stride windows nest under their solve span, contiguously
        for solve in sink.find("solve"):
            strides = [c for c in solve.children if c.name == "stride"]
            assert strides, "solve span has no stride windows"
            assert sum(s.attrs["iterations"] for s in strides) == \
                solve.attrs["iterations"]

    def test_ladder_attempts_and_exhaustions_are_traced(self, tiny_program,
                                                        backend):
        sink = InMemorySink()
        governor = ResourceGovernor(
            budgets={"main": PhaseBudget(memory_bytes=1 << 30)},
            check_stride=1)
        plan = FaultPlan([FaultSpec(point="memory-spike", times=-1,
                                    bytes=1 << 40)])
        with faults.active(plan):
            run = run_analysis(tiny_program, "2obj", pts_backend=backend,
                               governor=governor, degrade=True,
                               tracer=Tracer(sinks=(sink,)))
        assert run.degraded
        attempts = sink.find("attempt")
        assert len(attempts) == len(run.attempts) == 2
        assert attempts[0].attrs["outcome"] == "exhausted"
        assert attempts[0].attrs["cause"] == "memory"
        assert attempts[0].attrs["phase"] == "main"
        assert attempts[1].attrs["outcome"] == "ok"
        assert "governor.exhausted" in sink.instant_names()
        assert "fault" in sink.instant_names()  # the spike firing

    def test_failed_attempt_keeps_its_own_recorder(self, tiny_program,
                                                   backend):
        perf = PerfRecorder()
        governor = ResourceGovernor(
            budgets={"main": PhaseBudget(memory_bytes=1 << 30)},
            check_stride=1)
        plan = FaultPlan([FaultSpec(point="memory-spike", times=-1,
                                    bytes=1 << 40)])
        with faults.active(plan):
            run = run_analysis(tiny_program, "2obj", pts_backend=backend,
                               governor=governor, degrade=True, perf=perf)
        failed, rescued = run.attempts
        assert failed.recorder is not None
        assert failed.recorder is not perf
        assert failed.recorder.counters  # the doomed solve did real work
        assert "perf" in failed.as_dict()
        # the failed rung's counters did NOT pollute the run-level view:
        # the merged recorder equals the successful attempt's alone
        assert perf.counters == rescued.recorder.counters

    def test_tracing_changes_no_analysis_facts(self, tiny_program, backend):
        def facts(tracer):
            run = run_analysis(tiny_program, "M-2obj", pts_backend=backend,
                               tracer=tracer)
            result = run.result
            pts = {}
            for method in tiny_program.all_methods():
                qname = method.qualified_name
                for var in method.local_variables():
                    ids = result.var_points_to_ids(qname, var)
                    if ids:
                        pts[(qname, var)] = ids
            return (pts, result.call_graph_edges(),
                    result.reachable_methods(), run.config.name)

        traced = facts(Tracer(sinks=(InMemorySink(),)))
        untraced = facts(None)
        assert traced == untraced


class TestNullSinkOverheadSmoke:
    def test_null_sink_solve_stays_cheap(self):
        """A tracer with no sinks on a real solve must stay within 2x
        of the untraced run (the benchmark holds it under 5%; this is
        the flake-proof CI bound)."""
        from repro.pta.solver import Solver
        from repro.workloads import load_profile

        program = load_profile("cycles", 1.0)

        def best_of(tracer, repeats=3):
            times = []
            for _ in range(repeats):
                solver = Solver(program, tracer=tracer)
                solver.solve()
                times.append(solver.solve_seconds)
            return min(times)

        untraced = best_of(None)
        traced = best_of(Tracer())
        assert traced <= max(untraced * 2.0, untraced + 0.05)
