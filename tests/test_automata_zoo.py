"""An equivalence zoo: hand-constructed FPG shapes, each pinning one
distinct behaviour of the type-consistency check.

Complements the random property tests with cases a fuzzer hits rarely:
deep diamonds, self-loops vs longer cycles, shared tails, sibling
nondeterminism, error-vs-null distinctions, and Condition-1/Condition-2
interaction.
"""

import pytest

from repro.core import (
    FieldPointsToGraph,
    SharedAutomata,
    merge_type_consistent_objects,
    shared_equivalent,
)


def check(fpg, a, b):
    shared = SharedAutomata(fpg)
    if not (shared.singletype(a) and shared.singletype(b)):
        return False
    return shared_equivalent(shared.dfa_root(a), shared.dfa_root(b))


def graph(objects, edges, nulls=()):
    fpg = FieldPointsToGraph()
    for obj, type_name in objects:
        fpg.add_object(obj, type_name)
    for source, field_name, target in edges:
        fpg.add_edge(source, field_name, target)
    for source, field_name in nulls:
        fpg.add_null_field(source, field_name)
    return fpg


class TestShapes:
    def test_deep_chains_equivalent(self):
        fpg = graph(
            [(i, t) for i, t in enumerate("TUVWX", start=1)]
            + [(i + 10, t) for i, t in enumerate("TUVWX", start=1)],
            [(i, "f", i + 1) for i in range(1, 5)]
            + [(i + 10, "f", i + 11) for i in range(1, 5)],
        )
        assert check(fpg, 1, 11)

    def test_diamond_vs_straight_line(self):
        # 1 -f-> {2,3} -g-> 4  vs  5 -f-> 6 -g-> 7 : same behaviour
        fpg = graph(
            [(1, "T"), (2, "U"), (3, "U"), (4, "X"),
             (5, "T"), (6, "U"), (7, "X")],
            [(1, "f", 2), (1, "f", 3), (2, "g", 4), (3, "g", 4),
             (5, "f", 6), (6, "g", 7)],
        )
        assert check(fpg, 1, 5)

    def test_diamond_with_divergent_arm(self):
        # one arm continues, the other does not: still merged as a set,
        # the subset construction sees {2,3} -g-> {4}
        fpg = graph(
            [(1, "T"), (2, "U"), (3, "U"), (4, "X"),
             (5, "T"), (6, "U"), (7, "X")],
            [(1, "f", 2), (1, "f", 3), (2, "g", 4),
             (5, "f", 6), (6, "g", 7)],
        )
        assert check(fpg, 1, 5)

    def test_self_loop_vs_two_cycle(self):
        fpg = graph(
            [(1, "T"), (2, "T"), (3, "T")],
            [(1, "f", 1), (2, "f", 3), (3, "f", 2)],
        )
        assert check(fpg, 1, 2)

    def test_self_loop_vs_lasso(self):
        # 1: T with f self-loop; 4: T -f-> T -f-> (cycle back to itself)
        fpg = graph(
            [(1, "T"), (4, "T"), (5, "T")],
            [(1, "f", 1), (4, "f", 5), (5, "f", 5)],
        )
        assert check(fpg, 1, 4)

    def test_cycle_through_different_type_breaks_equivalence(self):
        fpg = graph(
            [(1, "T"), (2, "T"), (3, "T"), (4, "U")],
            [(1, "f", 1), (2, "f", 3), (3, "f", 4), (4, "f", 2)],
        )
        assert not check(fpg, 1, 2)

    def test_shared_tail(self):
        # two roots pointing into the SAME subgraph are trivially merged
        fpg = graph(
            [(1, "T"), (2, "T"), (3, "U"), (4, "V")],
            [(1, "f", 3), (2, "f", 3), (3, "g", 4)],
        )
        assert check(fpg, 1, 2)
        shared = SharedAutomata(fpg)
        # and their successor state object is literally shared
        assert shared.dfa_root(1).transitions["f"] is \
            shared.dfa_root(2).transitions["f"]

    def test_alphabet_mismatch(self):
        # same type, one has an extra field: one-symbol distinguisher
        fpg = graph(
            [(1, "T"), (2, "T"), (3, "U"), (4, "U"), (5, "V")],
            [(1, "f", 3), (2, "f", 4), (2, "g", 5)],
        )
        assert not check(fpg, 1, 2)

    def test_depth_two_difference(self):
        fpg = graph(
            [(1, "T"), (2, "U"), (3, "V"),
             (4, "T"), (5, "U"), (6, "W")],
            [(1, "f", 2), (2, "f", 3), (4, "f", 5), (5, "f", 6)],
        )
        assert not check(fpg, 1, 4)

    def test_null_tail_vs_null_tail_at_depth(self):
        fpg = graph(
            [(1, "T"), (2, "U"), (3, "T"), (4, "U")],
            [(1, "f", 2), (3, "f", 4)],
            nulls=[(2, "g"), (4, "g")],
        )
        assert check(fpg, 1, 3)

    def test_null_tail_vs_missing_tail_at_depth(self):
        fpg = graph(
            [(1, "T"), (2, "U"), (3, "T"), (4, "U")],
            [(1, "f", 2), (3, "f", 4)],
            nulls=[(2, "g")],
        )
        assert not check(fpg, 1, 3)

    def test_condition2_violation_deep_in_one_graph(self):
        # roots look identical one hop out; three hops out, one frontier
        # mixes types — SINGLETYPE must reject both for merging purposes
        fpg = graph(
            [(1, "T"), (2, "U"), (3, "V"), (8, "X"), (9, "Y"),
             (11, "T"), (12, "U"), (13, "V"), (18, "X")],
            [(1, "f", 2), (2, "f", 3), (3, "f", 8), (3, "f", 9),
             (11, "f", 12), (12, "f", 13), (13, "f", 18)],
        )
        shared = SharedAutomata(fpg)
        assert not shared.singletype(1)
        assert shared.singletype(11)
        result = merge_type_consistent_objects(fpg)
        assert result.mom[1] != result.mom[11]

    def test_wide_nondeterminism_collapses(self):
        # ten same-type successors behave like one
        objects = [(1, "T"), (50, "T"), (51, "U")]
        edges = [(50, "f", 51)]
        for i in range(2, 12):
            objects.append((i, "U"))
            edges.append((1, "f", i))
        fpg = graph(objects, edges)
        assert check(fpg, 1, 50)

    def test_field_name_permutation_matters(self):
        fpg = graph(
            [(1, "T"), (2, "U"), (3, "V"),
             (4, "T"), (5, "U"), (6, "V")],
            [(1, "f", 2), (1, "g", 3), (4, "f", 5), (4, "g", 6)],
        )
        assert check(fpg, 1, 4)
        fpg2 = graph(
            [(1, "T"), (2, "U"), (3, "V"),
             (4, "T"), (5, "U"), (6, "V")],
            [(1, "f", 2), (1, "g", 3), (4, "g", 5), (4, "f", 6)],
        )
        assert not check(fpg2, 1, 4)

    def test_reflexivity_on_every_zoo_member(self):
        fpg = graph(
            [(1, "T"), (2, "U"), (3, "T")],
            [(1, "f", 2), (2, "f", 1), (3, "f", 3)],
        )
        for obj in fpg.objects():
            assert check(fpg, obj, obj)


class TestMergeOnZoo:
    def test_quotient_on_mixed_zoo(self):
        fpg = graph(
            [(1, "T"), (2, "T"), (3, "T"), (4, "U"), (5, "U"), (6, "V")],
            [(1, "f", 4), (2, "f", 5), (3, "f", 6), (4, "g", 6),
             (5, "g", 6)],
        )
        result = merge_type_consistent_objects(fpg)
        classes = sorted(tuple(sorted(c)) for c in result.classes)
        # 1≡2 (U children with V grandchildren); 3 differs (V child);
        # 4≡5; 6 alone
        assert (1, 2) in classes
        assert (3,) in classes
        assert (4, 5) in classes
        assert (6,) in classes
