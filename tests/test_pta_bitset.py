"""Unit tests for the bitset backend machinery (repro.pta.bitset)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pta.bitset import (
    BACKEND_BITSET,
    BACKEND_NAMES,
    BACKEND_SET,
    ClassFilterMasks,
    bits_from_ids,
    bits_to_list,
    default_backend,
    iter_bits,
    popcount,
    resolve_backend,
    set_default_backend,
)


class TestPrimitives:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(1) == 1
        assert popcount(0b1011) == 3
        assert popcount((1 << 5000) | 1) == 2

    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b101001)) == [0, 3, 5]
        assert list(iter_bits(1 << 4096)) == [4096]

    def test_bits_to_list_sparse_and_dense(self):
        # sparse path (≤16 bits: isolate-lowest-bit loop)
        sparse = bits_from_ids([0, 7, 300, 4095])
        assert bits_to_list(sparse) == [0, 7, 300, 4095]
        # dense path (>16 bits: byte-table decode)
        ids = list(range(0, 500, 3))
        assert bits_to_list(bits_from_ids(ids)) == ids

    def test_bits_from_ids_is_idempotent_union(self):
        assert bits_from_ids([3, 3, 3]) == 1 << 3
        assert bits_from_ids([]) == 0

    @given(st.sets(st.integers(0, 2000)))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, ids):
        bits = bits_from_ids(ids)
        assert popcount(bits) == len(ids)
        assert bits_to_list(bits) == sorted(ids)
        assert list(iter_bits(bits)) == sorted(ids)

    @given(st.sets(st.integers(0, 300)), st.sets(st.integers(0, 300)))
    @settings(max_examples=60, deadline=None)
    def test_bit_algebra_matches_set_algebra(self, a, b):
        ba, bb = bits_from_ids(a), bits_from_ids(b)
        assert set(bits_to_list(ba | bb)) == a | b
        assert set(bits_to_list(ba & bb)) == a & b
        # the solver's difference idiom: XOR out the common bits
        common = ba & bb
        assert set(bits_to_list(ba ^ common)) == a - b


class TestBackendRegistry:
    def test_names(self):
        assert BACKEND_BITSET in BACKEND_NAMES
        assert BACKEND_SET in BACKEND_NAMES

    def test_resolve_explicit(self):
        assert resolve_backend(BACKEND_SET) == BACKEND_SET
        with pytest.raises(ValueError):
            resolve_backend("roaring")

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PTS_BACKEND", BACKEND_SET)
        assert resolve_backend() == BACKEND_SET
        monkeypatch.delenv("REPRO_PTS_BACKEND")
        assert resolve_backend() == default_backend()

    def test_set_default_roundtrip(self):
        previous = set_default_backend(BACKEND_SET)
        try:
            assert default_backend() == BACKEND_SET
            assert resolve_backend() == BACKEND_SET
        finally:
            set_default_backend(previous)
        with pytest.raises(ValueError):
            set_default_backend("nope")


class TestClassFilterMasks:
    @staticmethod
    def _is_subtype(sub: str, sup: str) -> bool:
        # toy hierarchy: A <: Object, B <: A <: Object
        chains = {"A": {"A", "Object"}, "B": {"B", "A", "Object"},
                  "Object": {"Object"}}
        return sup in chains.get(sub, ())

    def test_lazy_build_and_watermark_extension(self):
        classes = ["A", "B"]
        masks = ClassFilterMasks(classes, self._is_subtype)
        assert len(masks) == 0
        assert masks.mask_for("A") == 0b11
        assert len(masks) == 1
        assert masks.extensions == 1
        # observed by reference: intern two more objects, refetch
        classes.append("Object")
        classes.append("B")
        assert masks.mask_for("A") == 0b1011
        assert masks.extensions == 2
        # unchanged universe: no further extension
        assert masks.mask_for("A") == 0b1011
        assert masks.extensions == 2

    def test_distinct_filters_distinct_masks(self):
        classes = ["A", "B", "Object"]
        masks = ClassFilterMasks(classes, self._is_subtype)
        assert masks.mask_for("B") == 0b010
        assert masks.mask_for("Object") == 0b111
        assert masks.mask_for("Unknown") == 0
        stats = masks.stats()
        assert stats["masks"] == 3
        assert stats["mask_bits"] == 1 + 3 + 0

    def test_matches_solver_filter_semantics(self):
        """mask & delta must equal the per-object subtype filter."""
        classes = ["A", "B", "Object", "B", "A"]
        masks = ClassFilterMasks(classes, self._is_subtype)
        delta = bits_from_ids([0, 1, 2, 3, 4])
        for filter_class in ("A", "B", "Object"):
            expected = {
                obj for obj in range(len(classes))
                if self._is_subtype(classes[obj], filter_class)
            }
            got = set(bits_to_list(delta & masks.mask_for(filter_class)))
            assert got == expected, filter_class
