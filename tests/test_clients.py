"""Unit tests for the three type-dependent clients."""

from repro.clients import build_call_graph, check_casts, devirtualize
from repro.frontend import parse_program
from repro.pta import selector_for, solve


POLY_SOURCE = """
class A { method foo() { return this; } }
class B extends A { method foo() { return this; } }
class U {
  static method pick(x, y) { r = x; r = y; return r; }
}
main {
  a = new A();
  b = new B();
  m = U::pick(a, b);
  m.foo();
  a.foo();
  c = (B) m;
  d = (A) a;
}
"""


def result():
    return solve(parse_program(POLY_SOURCE))


class TestCallGraph:
    def test_edges_include_static_and_virtual(self):
        cg = build_call_graph(result())
        edges = {callee for _, callee in cg.edges}
        assert edges == {"U.pick", "A.foo", "B.foo"}

    def test_virtual_targets_per_site(self):
        cg = build_call_graph(result())
        # call site 2 is m.foo() (poly), 3 is a.foo() (mono)
        assert cg.targets_of(2) == frozenset(["A.foo", "B.foo"])
        assert cg.targets_of(3) == frozenset(["A.foo"])

    def test_static_sites_tracked_separately(self):
        cg = build_call_graph(result())
        assert cg.static_sites == frozenset([1])
        assert 1 not in cg.virtual_site_targets

    def test_reachable_methods(self):
        cg = build_call_graph(result())
        assert "<Main>.main" in cg.reachable_methods
        assert cg.reachable_method_count == 4

    def test_edge_count_metric(self):
        cg = build_call_graph(result())
        assert cg.edge_count == 4  # pick, A.foo(x2 sites), B.foo


class TestDevirtualization:
    def test_classification(self):
        report = devirtualize(result())
        assert report.poly_sites == frozenset([2])
        assert report.mono_sites == frozenset([3])
        assert report.poly_call_site_count == 1
        assert report.mono_call_site_count == 1

    def test_accepts_prebuilt_call_graph(self):
        cg = build_call_graph(result())
        assert devirtualize(cg) == devirtualize(result())

    def test_unresolved_sites(self):
        src = """
        class A { method foo() { return this; } }
        class U { static method none() { x = null; return x; } }
        main { a = U::none(); a.foo(); }
        """
        report = devirtualize(solve(parse_program(src)))
        assert report.unresolved_sites == frozenset([2])
        assert report.poly_call_site_count == 0

    def test_ratio(self):
        report = devirtualize(result())
        assert report.devirtualization_ratio == 0.5


class TestMayFailCasts:
    def test_classification(self):
        report = check_casts(result())
        # cast site 1 is (B) m — m may hold an A — may fail;
        # cast site 2 is (A) a — upcast — safe.
        assert report.may_fail_sites == frozenset([1])
        assert report.safe_sites == frozenset([2])
        assert report.may_fail_count == 1
        assert report.safe_count == 1

    def test_offending_classes(self):
        report = check_casts(result())
        assert report.offenders_of(1) == frozenset(["A"])
        assert report.offenders_of(2) == frozenset()

    def test_empty_source_cast_is_safe(self):
        src = """
        class A { }
        class U { static method none() { x = null; return x; } }
        main { n = U::none(); c = (A) n; }
        """
        report = check_casts(solve(parse_program(src)))
        assert report.may_fail_count == 0
        assert report.safe_sites == frozenset([1])

    def test_precision_depends_on_analysis(self):
        src = """
        class Box {
          field content: Object;
          method put(e) { this.content = e; }
          method get() { r = this.content; return r; }
        }
        class A { }
        class B { }
        main {
          b1 = new Box(); b2 = new Box();
          x = new A(); y = new B();
          b1.put(x); b2.put(y);
          gx = b1.get();
          c = (A) gx;
        }
        """
        program = parse_program(src)
        ci = check_casts(solve(program, selector_for("ci")))
        obj2 = check_casts(solve(program, selector_for("2obj")))
        assert ci.may_fail_count == 1   # b1/b2 conflated
        assert obj2.may_fail_count == 0  # receivers separated
