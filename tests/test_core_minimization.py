"""Tests for DFA minimization and the canonical-form merging engine."""

from hypothesis import given, settings

from repro.core.automata import SharedAutomata
from repro.core.equivalence import shared_equivalent
from repro.core.fpg import FieldPointsToGraph
from repro.core.merging import MergeOptions, merge_type_consistent_objects
from repro.core.minimization import (
    canonical_form,
    merge_by_canonical_forms,
    minimize,
)

from tests.strategies import field_points_to_graphs


def classes_of(result):
    return sorted(tuple(sorted(c)) for c in result.classes)


class TestMinimize:
    def test_chain_is_already_minimal(self):
        fpg = FieldPointsToGraph()
        for obj, t in [(1, "T"), (2, "U"), (3, "V")]:
            fpg.add_object(obj, t)
        fpg.add_edge(1, "f", 2)
        fpg.add_edge(2, "f", 3)
        minimal = minimize(SharedAutomata(fpg).dfa_root(1))
        assert minimal.size() == 3

    def test_equivalent_siblings_collapse(self):
        # 1 -f-> {2,3} where 2 and 3 are behaviourally identical leaves
        fpg = FieldPointsToGraph()
        for obj, t in [(1, "T"), (2, "U"), (3, "U")]:
            fpg.add_object(obj, t)
        fpg.add_edge(1, "f", 2)
        fpg.add_edge(1, "g", 3)
        minimal = minimize(SharedAutomata(fpg).dfa_root(1))
        # states: {1}, and {2}≡{3} merged -> 2 states
        assert minimal.size() == 2

    def test_unrolled_cycle_collapses(self):
        fpg = FieldPointsToGraph()
        for obj in (1, 2, 3):
            fpg.add_object(obj, "T")
        fpg.add_edge(1, "f", 2)
        fpg.add_edge(2, "f", 3)
        fpg.add_edge(3, "f", 1)  # 3-cycle, all T
        minimal = minimize(SharedAutomata(fpg).dfa_root(1))
        assert minimal.size() == 1

    def test_outputs_preserved(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        fpg.add_object(2, "X")
        fpg.add_edge(1, "f", 2)
        minimal = minimize(SharedAutomata(fpg).dfa_root(1))
        assert minimal.outputs[minimal.start] == frozenset(["T"])


class TestCanonicalForm:
    def test_isomorphic_automata_share_form(self):
        fpg = FieldPointsToGraph()
        for obj, t in [(1, "T"), (2, "U"), (5, "T"), (6, "U")]:
            fpg.add_object(obj, t)
        fpg.add_edge(1, "f", 2)
        fpg.add_edge(5, "f", 6)
        shared = SharedAutomata(fpg)
        form1 = canonical_form(minimize(shared.dfa_root(1)))
        form2 = canonical_form(minimize(shared.dfa_root(5)))
        assert form1 == form2

    def test_different_behaviour_different_form(self):
        fpg = FieldPointsToGraph()
        for obj, t in [(1, "T"), (2, "U"), (5, "T"), (6, "V")]:
            fpg.add_object(obj, t)
        fpg.add_edge(1, "f", 2)
        fpg.add_edge(5, "f", 6)
        shared = SharedAutomata(fpg)
        assert canonical_form(minimize(shared.dfa_root(1))) != \
            canonical_form(minimize(shared.dfa_root(5)))

    @given(field_points_to_graphs(max_objects=7))
    @settings(max_examples=60, deadline=None)
    def test_form_equality_matches_hopcroft_karp(self, fpg):
        """On singletype objects, canonical-form equality must coincide
        with the pairwise Hopcroft–Karp verdict."""
        shared = SharedAutomata(fpg)
        objs = [o for o in sorted(fpg.objects()) if shared.singletype(o)]
        forms = {
            o: canonical_form(minimize(shared.dfa_root(o))) for o in objs
        }
        for i, oi in enumerate(objs):
            for oj in objs[i + 1:]:
                if fpg.type_of(oi) != fpg.type_of(oj):
                    continue
                pairwise = shared_equivalent(
                    shared.dfa_root(oi), shared.dfa_root(oj)
                )
                assert (forms[oi] == forms[oj]) == pairwise, (oi, oj)


class TestCanonicalMerging:
    @given(field_points_to_graphs(max_objects=8))
    @settings(max_examples=60, deadline=None)
    def test_same_quotient_as_pairwise_engine(self, fpg):
        pairwise = merge_type_consistent_objects(fpg)
        hashed = merge_by_canonical_forms(fpg)
        assert classes_of(pairwise) == classes_of(hashed)

    def test_representative_policy_respected(self):
        fpg = FieldPointsToGraph()
        for obj in (1, 2, 3):
            fpg.add_object(obj, "T")
        result = merge_by_canonical_forms(
            fpg, MergeOptions(representative_policy="max_site")
        )
        assert result.mom == {1: 3, 2: 3, 3: 3}

    def test_counts_match(self, tiny_program):
        from repro.analysis import run_pre_analysis

        pre = run_pre_analysis(tiny_program)
        hashed = merge_by_canonical_forms(pre.fpg)
        assert hashed.object_count_after == pre.merge.object_count_after
