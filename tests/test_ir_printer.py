"""Round-trip tests: parse(print(program)) preserves structure."""

from repro.frontend import parse_program
from repro.ir.printer import print_method, print_program
from repro.workloads import TINY, generate, profile_spec


def normalize(program):
    """A structural fingerprint that is stable across site renumbering."""
    classes = {}
    for decl in program.classes.values():
        classes[decl.name] = (
            decl.type.superclass_name,
            tuple(sorted((f.name, f.declared_type, f.is_static)
                         for f in decl.fields.values())),
            tuple(sorted(
                (m.name, m.params, m.is_static,
                 tuple(type(s).__name__ for s in m.statements))
                for m in decl.methods.values()
            )),
        )
    entry = tuple(type(s).__name__ for s in program.entry.statements)
    return classes, entry


def test_roundtrip_figure1(figure1_program):
    text = print_program(figure1_program)
    reparsed = parse_program(text)
    assert normalize(reparsed) == normalize(figure1_program)


def test_roundtrip_tiny_workload(tiny_program):
    text = print_program(tiny_program)
    reparsed = parse_program(text)
    assert normalize(reparsed) == normalize(tiny_program)
    assert reparsed.stats() == tiny_program.stats()


def test_roundtrip_bigger_workload():
    program = generate(profile_spec("tiny", scale=2.0))
    reparsed = parse_program(print_program(program))
    assert normalize(reparsed) == normalize(program)


def test_print_method_renders_header_and_body(figure1_program):
    method = figure1_program.get_class("A").methods["foo"]
    text = print_method(method)
    assert text.startswith("    method foo()")
    assert "return this;" in text


def test_static_members_printed_with_keyword():
    source = """
    class A {
      static field sf: A;
      static method sm() { return this; }
    }
    main { x = A::sm(); A::sf = x; y = A::sf; }
    """
    program = parse_program(source, validate=False)
    text = print_program(program)
    assert "static field sf: A;" in text
    assert "static method sm()" in text
    assert "A::sf = x;" in text
    assert "y = A::sf;" in text
