"""Hypothesis strategy generating small well-formed IR programs.

Programs are built through :class:`~repro.ir.builder.ProgramBuilder`
so they are valid by construction: every referenced class/field/method
exists, every used variable was defined (points-to-wise a variable may
still be empty, which the solver must tolerate).

The generated shape: a small class pool with one level of inheritance,
a shared ``f`` field, one virtual method per class, a couple of static
helpers, and a straight-line ``main`` mixing allocations, copies,
loads, stores, casts, and calls.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import strategies as st

from repro.ir.builder import MethodBuilder, ProgramBuilder
from repro.ir.program import Program


@st.composite
def ir_programs(draw) -> Program:
    n_classes = draw(st.integers(2, 4))
    n_subclasses = draw(st.integers(0, 2))
    builder = ProgramBuilder()
    class_names: List[str] = []
    for i in range(n_classes):
        name = f"C{i}"
        builder.add_class(name)
        builder.add_field(name, "f", "Object")
        class_names.append(name)
    for i in range(n_subclasses):
        parent = class_names[i % n_classes]
        name = f"S{i}"
        builder.add_class(name, parent)
        class_names.append(name)
    # one virtual method per class: returns either `this` or its field
    for name in class_names:
        returns_field = draw(st.booleans(), label=f"{name}_returns_field")
        with builder.method(name, "m", params=("p",)) as mb:
            if returns_field:
                mb.store("this", "f", "p")
                value = mb.load("this", "f")
                mb.ret(value)
            else:
                mb.ret("this")
    # one static helper: identity
    builder.add_class("Util")
    with builder.method("Util", "id", params=("x",), static=True) as mb:
        mb.ret("x")

    with builder.main() as mb:
        defined: List[str] = []
        statements = draw(st.integers(3, 14))
        for index in range(statements):
            choice = draw(
                st.integers(0, 5 if defined else 0), label=f"stmt_{index}"
            )
            if choice == 0 or not defined:
                cls = draw(st.sampled_from(class_names), label=f"new_{index}")
                defined.append(mb.new(cls, target=f"v{index}"))
            elif choice == 1:
                source = draw(st.sampled_from(defined), label=f"cp_{index}")
                mb.copy(f"v{index}", source)
                defined.append(f"v{index}")
            elif choice == 2:
                base = draw(st.sampled_from(defined), label=f"ldb_{index}")
                defined.append(mb.load(base, "f", target=f"v{index}"))
            elif choice == 3:
                base = draw(st.sampled_from(defined), label=f"stb_{index}")
                source = draw(st.sampled_from(defined), label=f"sts_{index}")
                mb.store(base, "f", source)
            elif choice == 4:
                base = draw(st.sampled_from(defined), label=f"ivb_{index}")
                arg = draw(st.sampled_from(defined), label=f"iva_{index}")
                mb.invoke(base, "m", arg, target=f"v{index}")
                defined.append(f"v{index}")
            else:
                cls = draw(st.sampled_from(class_names), label=f"cst_{index}")
                source = draw(st.sampled_from(defined), label=f"css_{index}")
                defined.append(mb.cast(cls, source, target=f"v{index}"))
        helper_arg = draw(st.sampled_from(defined), label="util_arg")
        mb.static_invoke("Util", "id", helper_arg, target="util_result")
    return builder.build()
