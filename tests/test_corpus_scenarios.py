"""Exact-expectation scenario tests over the hand-written corpus.

Each scenario checks the precise points-to / client behaviour of one
realistic program shape under several configurations — the fine-grained
counterpart of the aggregate workload tests.
"""

import pytest

from repro.analysis import run_analysis, run_pre_analysis
from repro.clients import analyze_exceptions, check_casts, devirtualize
from repro.interp import interpret
from repro.pta import selector_for, solve
from repro.workloads.corpus import CORPUS, corpus_names, corpus_program


def sites(result, method, var):
    out = set()
    for obj in result.var_points_to_ids(method, var):
        out |= result.object_sites(obj)
    return out


class TestCache:
    def test_ci_conflates_cells(self):
        r = solve(corpus_program("cache"))
        assert sites(r, "<Main>.main", "g1") == {3, 4}

    def test_2obj_separates_cells(self):
        r = solve(corpus_program("cache"), selector_for("2obj"))
        assert sites(r, "<Main>.main", "g1") == {3}
        assert sites(r, "<Main>.main", "g2") == {4}

    def test_mahjong_merges_caches_keeps_type_clients(self):
        program = corpus_program("cache")
        pre = run_pre_analysis(program)
        cache_sites = [
            s for s, stmt in program.alloc_sites().items()
            if stmt.class_name == "Cache"
        ]
        assert len({pre.merge.mom[s] for s in cache_sites}) == 1
        base = run_analysis(program, "2obj").metrics()
        merged = run_analysis(program, "M-2obj", pre=pre).metrics()
        assert base["call_graph_edges"] == merged["call_graph_edges"]


class TestIterator:
    def test_heap_context_separates_iterators(self):
        r = solve(corpus_program("iterator"), selector_for("2obj"))
        a = sites(r, "<Main>.main", "fromA")
        b = sites(r, "<Main>.main", "fromB")
        assert a.isdisjoint(b)
        assert len(a) == 1 and len(b) == 1

    def test_ci_conflates_iterators(self):
        r = solve(corpus_program("iterator"))
        assert sites(r, "<Main>.main", "fromA") == \
            sites(r, "<Main>.main", "fromB")

    def test_single_iter_allocation_site(self):
        program = corpus_program("iterator")
        iter_sites = [
            s for s, stmt in program.alloc_sites().items()
            if stmt.class_name == "Iter"
        ]
        assert len(iter_sites) == 1  # identity comes from heap contexts


class TestBuilderChain:
    def test_fluent_chain_preserves_identity(self):
        r = solve(corpus_program("builder_chain"))
        main = "<Main>.main"
        assert sites(r, main, "b") == sites(r, main, "step1")
        assert sites(r, main, "step1") == sites(r, main, "step2")

    def test_build_returns_first_part(self):
        r = solve(corpus_program("builder_chain"), selector_for("2obj"))
        made = {
            d.class_name
            for d in r.var_points_to("<Main>.main", "made")
        }
        assert made == {"Part"}


class TestListeners:
    def test_fire_is_poly_because_both_registered(self):
        r = solve(corpus_program("listeners"))
        report = devirtualize(r)
        assert report.poly_call_site_count == 1  # l.on(e)

    def test_event_flows_back_out(self):
        r = solve(corpus_program("listeners"))
        out = {d.class_name for d in r.var_points_to("<Main>.main", "out")}
        assert out == {"Event"}

    def test_subscriber_set(self):
        r = solve(corpus_program("listeners"))
        classes = {
            d.class_name
            for d in r.var_points_to("Bus.fire", "l")
        }
        assert classes == {"LogListener", "UiListener"}


class TestRegistrySingleton:
    def test_static_field_flow(self):
        r = solve(corpus_program("registry_singleton"))
        got = {d.class_name for d in r.var_points_to("<Main>.main", "got")}
        assert got == {"Service"}

    def test_serve_is_mono(self):
        report = devirtualize(solve(corpus_program("registry_singleton")))
        assert report.poly_call_site_count == 0


class TestDowncastPipeline:
    def test_ci_reports_both_casts_may_fail(self):
        report = check_casts(solve(corpus_program("downcast_pipeline")))
        assert report.may_fail_count == 2  # payloads conflated in pass()

    def test_2cs_proves_good_cast_safe(self):
        r = solve(corpus_program("downcast_pipeline"), selector_for("2cs"))
        report = check_casts(r)
        assert report.may_fail_count == 1  # only the genuinely bad one
        # and the bad one is flagged by concrete execution too
        trace = interpret(corpus_program("downcast_pipeline"))
        assert len(trace.failed_casts) == 1


class TestFailurePaths:
    def test_exception_caught_and_returned(self):
        r = solve(corpus_program("failure_paths"))
        outcome = {
            d.class_name
            for d in r.var_points_to("<Main>.main", "outcome")
        }
        assert outcome == {"NetError"}

    def test_escape_report(self):
        report = analyze_exceptions(solve(corpus_program("failure_paths")))
        assert report.escaping_classes == frozenset({"NetError"})


class TestCorpusWide:
    @pytest.mark.parametrize("name", corpus_names())
    def test_every_entry_parses_and_solves(self, name):
        program = corpus_program(name)
        result = solve(program)
        assert result.reachable_methods()

    @pytest.mark.parametrize("name", corpus_names())
    def test_execution_is_over_approximated(self, name):
        program = corpus_program(name)
        trace = interpret(program)
        result = solve(program)
        assert trace.call_edges <= result.call_graph_edges()
        for (method, var), concrete_sites in trace.var_bindings.items():
            assert concrete_sites <= sites(result, method, var)

    @pytest.mark.parametrize("name", corpus_names())
    def test_mahjong_preserves_type_clients(self, name):
        program = corpus_program(name)
        pre = run_pre_analysis(program)
        base = run_analysis(program, "2obj").metrics()
        merged = run_analysis(program, "M-2obj", pre=pre).metrics()
        for metric in ("call_graph_edges", "poly_call_sites",
                       "may_fail_casts", "escaping_exceptions"):
            assert base[metric] == merged[metric], (name, metric)

    @pytest.mark.parametrize("name", corpus_names())
    def test_roundtrips_through_printer(self, name):
        from repro.frontend import parse_program
        from repro.ir.printer import print_program

        program = corpus_program(name)
        reparsed = parse_program(print_program(program))
        assert reparsed.stats() == program.stats()
