"""Unit tests for the heap modeler and equivalence-class reports."""

from repro.core.fpg import FieldPointsToGraph
from repro.core.heap_modeler import build_heap_abstraction, describe_classes
from repro.core.merging import merge_type_consistent_objects
from repro.pta.heapmodel import MahjongAbstraction


def report_fpg():
    fpg = FieldPointsToGraph()
    # three builders all storing chars, one bare node, two boxes per type
    for obj in (1, 2, 3):
        fpg.add_object(obj, "SB")
    fpg.add_object(4, "Chars")
    for obj in (1, 2, 3):
        fpg.add_edge(obj, "value", 4)
    fpg.add_object(5, "SB")
    fpg.add_null_field(5, "value")
    fpg.add_object(6, "Box")
    fpg.add_object(7, "Box")
    fpg.add_object(8, "X")
    fpg.add_object(9, "Y")
    fpg.add_edge(6, "elem", 8)
    fpg.add_edge(7, "elem", 9)
    return fpg


def test_build_heap_abstraction_wraps_mom():
    fpg = report_fpg()
    merge = merge_type_consistent_objects(fpg)
    abstraction = build_heap_abstraction(merge)
    assert isinstance(abstraction, MahjongAbstraction)
    assert abstraction.representative(2) == abstraction.representative(1)
    assert abstraction.representative(5) == 5


def test_reports_ranked_by_size():
    fpg = report_fpg()
    merge = merge_type_consistent_objects(fpg)
    reports = describe_classes(fpg, merge)
    sizes = [r.size for r in reports]
    assert sizes == sorted(sizes, reverse=True)
    assert reports[0].type_name == "SB"
    assert reports[0].size == 3
    assert reports[0].remark == "Chars"


def test_null_field_class_reported():
    fpg = report_fpg()
    merge = merge_type_consistent_objects(fpg)
    reports = describe_classes(fpg, merge)
    null_rows = [r for r in reports if r.remark == "null fields"]
    assert len(null_rows) == 1
    assert null_rows[0].sites == (5,)
    assert null_rows[0].total_objects_of_type == 4  # all SBs


def test_same_type_split_by_content():
    fpg = report_fpg()
    merge = merge_type_consistent_objects(fpg)
    reports = describe_classes(fpg, merge)
    box_rows = [r for r in reports if r.type_name == "Box"]
    assert len(box_rows) == 2
    assert {r.remark for r in box_rows} == {"X", "Y"}


def test_limit_truncates():
    fpg = report_fpg()
    merge = merge_type_consistent_objects(fpg)
    assert len(describe_classes(fpg, merge, limit=2)) == 2


def test_no_fields_remark():
    fpg = FieldPointsToGraph()
    fpg.add_object(1, "Plain")
    merge = merge_type_consistent_objects(fpg)
    (report,) = describe_classes(fpg, merge)
    assert report.remark == "no fields"


def test_report_str_renders():
    fpg = report_fpg()
    merge = merge_type_consistent_objects(fpg)
    text = str(describe_classes(fpg, merge)[0])
    assert "SB" in text and "size=3" in text
