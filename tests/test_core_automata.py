"""Unit and property tests for sequential automata (NFA/DFA/shared)."""

from hypothesis import given, settings

from repro.core.automata import (
    ERROR_TYPE_NAME,
    SharedAutomata,
    build_nfa,
    nfa_to_dfa,
)
from repro.core.fpg import NULL_OBJECT, FieldPointsToGraph

from tests.strategies import field_points_to_graphs


def figure2_fpg():
    """The paper's Figure 2: two rooted graphs with equivalent behaviour."""
    fpg = FieldPointsToGraph()
    for obj, type_name in [(1, "T"), (3, "U"), (5, "X"), (7, "Y"), (9, "Y"),
                           (11, "Y"), (2, "T"), (4, "U"), (6, "X"), (8, "Y")]:
        fpg.add_object(obj, type_name)
    fpg.add_edge(1, "f", 3)
    fpg.add_edge(1, "g", 5)
    fpg.add_edge(3, "h", 7)
    fpg.add_edge(3, "h", 9)
    fpg.add_edge(5, "k", 11)
    fpg.add_edge(2, "f", 4)
    fpg.add_edge(2, "g", 6)
    fpg.add_edge(4, "h", 8)
    fpg.add_edge(6, "k", 8)
    return fpg


class TestNFABuilder:
    def test_states_are_reachable_objects(self):
        nfa = build_nfa(figure2_fpg(), 1)
        assert nfa.states == frozenset([1, 3, 5, 7, 9, 11])
        assert nfa.q0 == 1

    def test_alphabet_and_outputs(self):
        nfa = build_nfa(figure2_fpg(), 2)
        assert nfa.sigma == frozenset(["f", "g", "h", "k"])
        assert nfa.outputs == frozenset(["T", "U", "X", "Y"])

    def test_delta_matches_fpg(self):
        nfa = build_nfa(figure2_fpg(), 1)
        assert nfa.delta[(3, "h")] == frozenset([7, 9])
        assert (7, "h") not in nfa.delta

    def test_size_metric(self):
        fpg = figure2_fpg()
        assert build_nfa(fpg, 1).size() == 6
        assert build_nfa(fpg, 8).size() == 1

    def test_null_gets_self_loops_over_sigma(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        fpg.add_null_field(1, "f")
        nfa = build_nfa(fpg, 1)
        assert nfa.delta[(NULL_OBJECT, "f")] == frozenset([NULL_OBJECT])


class TestSubsetConstruction:
    def test_nondeterminism_collapses_to_one_state(self):
        dfa = nfa_to_dfa(build_nfa(figure2_fpg(), 1))
        # o3 -h-> {o7, o9}: the DFA has the state {7, 9}
        assert frozenset([7, 9]) in dfa.states
        assert dfa.gamma[frozenset([7, 9])] == frozenset(["Y"])

    def test_behavior_along_words(self):
        dfa = nfa_to_dfa(build_nfa(figure2_fpg(), 1))
        assert dfa.behavior([]) == frozenset(["T"])
        assert dfa.behavior(["f"]) == frozenset(["U"])
        assert dfa.behavior(["f", "h"]) == frozenset(["Y"])
        assert dfa.behavior(["g", "k"]) == frozenset(["Y"])

    def test_undefined_words_hit_error(self):
        dfa = nfa_to_dfa(build_nfa(figure2_fpg(), 1))
        assert dfa.behavior(["h"]) == frozenset([ERROR_TYPE_NAME])
        assert dfa.behavior(["f", "f"]) == frozenset([ERROR_TYPE_NAME])

    def test_start_state_is_singleton_root(self):
        dfa = nfa_to_dfa(build_nfa(figure2_fpg(), 2))
        assert dfa.q0 == frozenset([2])

    def test_cycles_handled(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        fpg.add_object(2, "T")
        fpg.add_edge(1, "f", 2)
        fpg.add_edge(2, "f", 1)
        dfa = nfa_to_dfa(build_nfa(fpg, 1))
        assert dfa.behavior(["f"] * 7) == frozenset(["T"])


class TestSharedAutomata:
    def test_common_substructure_is_shared(self):
        fpg = figure2_fpg()
        shared = SharedAutomata(fpg)
        root1 = shared.dfa_root(1)
        root2 = shared.dfa_root(2)
        # both reach the same {8} state object via different paths? no —
        # they reach different objects; but re-requesting a root reuses it
        assert shared.dfa_root(1) is root1
        # a shared inner object produces the identical state instance
        inner_from_1 = root1.transitions["f"]
        assert shared.dfa_root(3) is inner_from_1
        assert root2.transitions["f"] is shared.dfa_root(4)

    def test_transitions_computed_once_per_state(self):
        fpg = figure2_fpg()
        shared = SharedAutomata(fpg)
        shared.dfa_root(1)
        count = shared.transition_computations
        shared.dfa_root(3)  # subsumed by the previous construction
        assert shared.transition_computations == count

    def test_singletype_accepts_uniform_graphs(self):
        shared = SharedAutomata(figure2_fpg())
        assert shared.singletype(1)
        assert shared.singletype(2)

    def test_singletype_rejects_mixed_frontier(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        fpg.add_object(2, "X")
        fpg.add_object(3, "Y")
        fpg.add_edge(1, "f", 2)
        fpg.add_edge(1, "f", 3)
        shared = SharedAutomata(fpg)
        assert not shared.singletype(1)
        assert shared.singletype(2)

    def test_singletype_on_cycles(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        fpg.add_object(2, "T")
        fpg.add_edge(1, "f", 2)
        fpg.add_edge(2, "f", 1)
        assert SharedAutomata(fpg).singletype(1)

    def test_nfa_size(self):
        shared = SharedAutomata(figure2_fpg())
        assert shared.nfa_size(1) == 6
        assert shared.nfa_size(8) == 1


class TestSharedMatchesExplicit:
    @given(field_points_to_graphs())
    @settings(max_examples=60, deadline=None)
    def test_shared_states_agree_with_explicit_dfa(self, fpg):
        shared = SharedAutomata(fpg)
        for root in fpg.objects():
            explicit = nfa_to_dfa(build_nfa(fpg, root))
            # walk every explicit state through the shared representation
            stack = [(explicit.q0, shared.dfa_root(root))]
            seen = set()
            while stack:
                estate, sstate = stack.pop()
                if estate in seen:
                    continue
                seen.add(estate)
                assert estate == sstate.objects
                assert explicit.gamma[estate] == sstate.types
                for (state, symbol), nxt in explicit.delta.items():
                    if state == estate:
                        assert symbol in sstate.transitions
                        stack.append((nxt, sstate.transitions[symbol]))
