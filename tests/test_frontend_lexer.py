"""Unit tests for the mini-Java lexer."""

import pytest

from repro.frontend.errors import LexError
from repro.frontend.lexer import TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)][:-1]  # drop EOF


def test_empty_input_yields_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == TokenKind.EOF


def test_keywords_vs_identifiers():
    assert kinds("class foo new")[:3] == [
        TokenKind.CLASS, TokenKind.IDENT, TokenKind.NEW
    ]
    # keywords are not matched as prefixes
    assert kinds("classy newish")[:2] == [TokenKind.IDENT, TokenKind.IDENT]


def test_punctuation():
    assert kinds("{ } ( ) ; , . =")[:-1] == [
        TokenKind.LBRACE, TokenKind.RBRACE, TokenKind.LPAREN,
        TokenKind.RPAREN, TokenKind.SEMI, TokenKind.COMMA,
        TokenKind.DOT, TokenKind.ASSIGN,
    ]


def test_colon_vs_double_colon():
    assert kinds(": ::")[:-1] == [TokenKind.COLON, TokenKind.DOUBLE_COLON]
    assert kinds("A::f")[:-1] == [
        TokenKind.IDENT, TokenKind.DOUBLE_COLON, TokenKind.IDENT
    ]


def test_angle_bracket_identifiers_roundtrip():
    assert texts("<Main> Obj[]") == ["<Main>", "Obj[]"]


def test_line_comment_skipped():
    assert texts("a // the rest is ignored\nb") == ["a", "b"]


def test_block_comment_skipped_including_newlines():
    assert texts("a /* multi\nline */ b") == ["a", "b"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError, match="unterminated"):
        tokenize("a /* never closed")


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexError) as excinfo:
        tokenize("a\n  %")
    assert excinfo.value.position.line == 2
    assert excinfo.value.position.column == 3


def test_positions_track_lines_and_columns():
    tokens = tokenize("ab\n  cd")
    assert (tokens[0].position.line, tokens[0].position.column) == (1, 1)
    assert (tokens[1].position.line, tokens[1].position.column) == (2, 3)


def test_all_statement_punctuation_in_context():
    tokens = tokenize("x = y.f(a, b);")
    assert [t.kind for t in tokens[:-1]] == [
        TokenKind.IDENT, TokenKind.ASSIGN, TokenKind.IDENT, TokenKind.DOT,
        TokenKind.IDENT, TokenKind.LPAREN, TokenKind.IDENT, TokenKind.COMMA,
        TokenKind.IDENT, TokenKind.RPAREN, TokenKind.SEMI,
    ]
