"""Unit tests for the field points-to graph."""

import pytest

from repro.core.fpg import NULL_OBJECT, NULL_TYPE_NAME, FieldPointsToGraph, build_fpg
from repro.frontend import parse_program
from repro.pta import AllocationTypeAbstraction, selector_for, solve


def small_fpg():
    fpg = FieldPointsToGraph()
    fpg.add_object(1, "T")
    fpg.add_object(2, "U")
    fpg.add_object(3, "U")
    fpg.add_edge(1, "f", 2)
    fpg.add_edge(1, "f", 3)
    fpg.add_edge(2, "g", 1)  # cycle
    return fpg


class TestConstruction:
    def test_null_node_always_present(self):
        fpg = FieldPointsToGraph()
        assert NULL_OBJECT in fpg
        assert fpg.type_of(NULL_OBJECT) == NULL_TYPE_NAME
        assert len(fpg) == 0

    def test_node_zero_reserved(self):
        fpg = FieldPointsToGraph()
        with pytest.raises(ValueError, match="reserved"):
            fpg.add_object(0, "T")

    def test_type_conflict_rejected(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        with pytest.raises(ValueError, match="already has type"):
            fpg.add_object(1, "U")

    def test_readding_same_type_is_noop(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        fpg.add_object(1, "T")
        assert len(fpg) == 1

    def test_edges_require_known_nodes(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        with pytest.raises(KeyError):
            fpg.add_edge(1, "f", 9)
        with pytest.raises(KeyError):
            fpg.add_edge(9, "f", 1)

    def test_null_field_edge(self):
        fpg = FieldPointsToGraph()
        fpg.add_object(1, "T")
        fpg.add_null_field(1, "f")
        assert fpg.points_to(1, "f") == frozenset([NULL_OBJECT])


class TestQueries:
    def test_points_to_and_fields_of(self):
        fpg = small_fpg()
        assert fpg.points_to(1, "f") == frozenset([2, 3])
        assert fpg.points_to(1, "missing") == frozenset()
        assert set(fpg.fields_of(1)) == {"f"}

    def test_reachability_follows_cycles(self):
        fpg = small_fpg()
        assert fpg.reachable_from(1) == {1, 2, 3}
        assert fpg.reachable_from(2) == {1, 2, 3}
        assert fpg.reachable_from(3) == {3}

    def test_edge_count_and_stats(self):
        fpg = small_fpg()
        assert fpg.edge_count() == 3
        stats = fpg.stats()
        assert stats == {"objects": 3, "types": 2, "fields": 2, "edges": 3}

    def test_objects_excludes_null(self):
        fpg = small_fpg()
        fpg.add_null_field(3, "f")
        assert set(fpg.objects()) == {1, 2, 3}


class TestBuildFromPreAnalysis:
    SOURCE = """
    class A { field f: Object; field g: Object; }
    main {
      a = new A();
      v = new Object();
      a.f = v;
    }
    """

    def test_nodes_are_allocation_sites(self):
        result = solve(parse_program(self.SOURCE))
        fpg = build_fpg(result)
        assert set(fpg.objects()) == {1, 2}
        assert fpg.type_of(1) == "A"
        assert fpg.type_of(2) == "Object"

    def test_field_edges_from_points_to(self):
        fpg = build_fpg(solve(parse_program(self.SOURCE)))
        assert fpg.points_to(1, "f") == frozenset([2])

    def test_unassigned_declared_field_points_to_null(self):
        fpg = build_fpg(solve(parse_program(self.SOURCE)))
        assert fpg.points_to(1, "g") == frozenset([NULL_OBJECT])

    def test_rejects_context_sensitive_pre_analysis(self):
        result = solve(parse_program(self.SOURCE), selector_for("2obj"))
        with pytest.raises(ValueError, match="context-insensitive"):
            build_fpg(result)

    def test_rejects_non_alloc_site_heap(self):
        program = parse_program(self.SOURCE)
        result = solve(program, heap_model=AllocationTypeAbstraction(program))
        with pytest.raises(ValueError, match="allocation-site"):
            build_fpg(result)

    def test_inherited_fields_get_null_completion(self):
        src = """
        class A { field f: Object; }
        class B extends A { field g: Object; }
        main { b = new B(); }
        """
        fpg = build_fpg(solve(parse_program(src)))
        assert fpg.points_to(1, "f") == frozenset([NULL_OBJECT])
        assert fpg.points_to(1, "g") == frozenset([NULL_OBJECT])
