"""The bench harness ``main()`` CLIs parse their flags and run."""

import pytest

from repro.bench import backends, fig8, fig9, motivating, prestats, table1, table2
from repro.bench.__main__ import main as dispatch


class TestHarnessMains:
    def test_fig8_main(self, capsys):
        assert fig8.main(["--profiles", "luindex", "--scale", "0.2"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_fig9_main(self, capsys):
        assert fig9.main(["--profile", "luindex", "--scale", "0.2"]) == 0
        assert "singleton classes" in capsys.readouterr().out

    def test_table1_main(self, capsys):
        assert table1.main(["--profile", "luindex", "--scale", "0.2",
                            "--limit", "5"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_table2_main(self, capsys):
        assert table2.main(["--profiles", "luindex", "--configs", "2type",
                            "--scale", "0.2", "--budget", "30"]) == 0
        out = capsys.readouterr().out
        assert "M-2type" in out

    def test_prestats_main(self, capsys):
        assert prestats.main(["--profiles", "luindex",
                              "--scale", "0.2"]) == 0
        assert "NFA" in capsys.readouterr().out

    def test_motivating_main(self, capsys):
        assert motivating.main(["--profile", "luindex", "--scale", "0.3",
                                "--budget", "60"]) == 0
        assert "paper shape holds" in capsys.readouterr().out

    def test_backends_main(self, capsys, tmp_path):
        out_file = tmp_path / "backends.txt"
        assert backends.main(["--profile", "luindex", "--scale", "0.3",
                              "--repeats", "1", "--replay-configs", "ci",
                              "--skip-solves", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Propagation replay" in out
        assert "headline" in out
        assert out_file.read_text().strip() in out

    def test_backends_replay_reproduces_solve(self):
        """The harness refuses to report timings for divergent work."""
        from repro.workloads import load_profile

        program = load_profile("luindex", 0.3)
        measurement = backends.replay_propagation(program, "2obj", repeats=1)
        assert measurement.facts > 0
        assert measurement.seeds > 0
        assert measurement.set_seconds > 0
        assert measurement.bitset_seconds > 0


class TestDispatcher:
    def test_help(self, capsys):
        assert dispatch([]) == 0
        out = capsys.readouterr().out
        for name in ("table2", "fig8", "compare", "report", "all"):
            assert name in out

    def test_unknown(self, capsys):
        assert dispatch(["bogus"]) == 2

    def test_named_dispatch(self, capsys):
        assert dispatch(["fig8", "--profiles", "luindex",
                         "--scale", "0.2"]) == 0
        assert "reduction" in capsys.readouterr().out
