"""Tests for DOT export."""

from repro.analysis import run_pre_analysis
from repro.clients import build_call_graph
from repro.core import SharedAutomata, build_nfa, nfa_to_dfa
from repro.core.fpg import FieldPointsToGraph
from repro.core.merging import merge_type_consistent_objects
from repro.frontend import parse_program
from repro.pta import solve
from repro.viz import (
    call_graph_to_dot,
    dfa_to_dot,
    fpg_to_dot,
    hierarchy_to_dot,
    shared_dfa_to_dot,
)


def small_fpg():
    fpg = FieldPointsToGraph()
    fpg.add_object(1, "T")
    fpg.add_object(2, "T")
    fpg.add_object(3, "X")
    fpg.add_edge(1, "f", 3)
    fpg.add_edge(2, "f", 3)
    fpg.add_null_field(2, "g")
    return fpg


class TestFpgDot:
    def test_nodes_edges_and_null(self):
        dot = fpg_to_dot(small_fpg())
        assert dot.startswith('digraph "FPG"')
        assert 'n1 [label="o1: T"' in dot
        assert 'n1 -> n3 [label="f"];' in dot
        assert 'n0 [label="null"' in dot
        assert dot.rstrip().endswith("}")

    def test_merged_classes_share_color(self):
        fpg = small_fpg()
        mom = merge_type_consistent_objects(fpg).mom
        dot = fpg_to_dot(fpg, mom)
        # sites 1 and 2 do NOT merge (2 has a null g field), so no
        # shared fill; force a merged map to see coloring:
        dot = fpg_to_dot(fpg, {1: 1, 2: 1, 3: 3})
        color_lines = [
            l for l in dot.splitlines()
            if 'fillcolor="#' in l and "null" not in l
        ]
        assert len(color_lines) == 2  # n1 and n2 colored alike
        assert len({l.split("fillcolor=")[1] for l in color_lines}) == 1

    def test_deterministic(self):
        fpg = small_fpg()
        assert fpg_to_dot(fpg) == fpg_to_dot(fpg)


class TestDfaDot:
    def test_explicit_dfa(self):
        fpg = small_fpg()
        dot = dfa_to_dot(nfa_to_dfa(build_nfa(fpg, 1)))
        assert "doublecircle" in dot  # start state highlighted
        assert '[label="f"]' in dot

    def test_shared_dfa(self):
        fpg = small_fpg()
        shared = SharedAutomata(fpg)
        dot = shared_dfa_to_dot(shared.dfa_root(1))
        assert "{o1}" in dot
        assert '[label="f"]' in dot


class TestCallGraphDot:
    SOURCE = """
    class A { method foo() { return this; } }
    main { a = new A(); a.foo(); }
    """

    def test_method_level_rendering(self):
        program = parse_program(self.SOURCE)
        cg = build_call_graph(solve(program))
        dot = call_graph_to_dot(cg.edges, program)
        assert '[label="<Main>.main"]' in dot
        assert '[label="A.foo"]' in dot
        assert "->" in dot

    def test_site_level_rendering(self):
        program = parse_program(self.SOURCE)
        cg = build_call_graph(solve(program))
        dot = call_graph_to_dot(cg.edges)
        assert 'site1 -> "A.foo";' in dot


class TestHierarchyDot:
    def test_edges_point_down(self, figure1_program):
        dot = hierarchy_to_dot(figure1_program)
        assert '"A" -> "B";' in dot
        assert '"A" -> "C";' in dot
        assert '"Object" -> "A";' in dot


class TestOnRealWorkload:
    def test_whole_pipeline_renders(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        dot = fpg_to_dot(pre.fpg, pre.merge.mom)
        assert dot.count("->") == pre.fpg.edge_count()
