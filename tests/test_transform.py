"""Tests for IR transformations and their analysis invariants."""

from hypothesis import given, settings

from repro.analysis import run_analysis
from repro.frontend import parse_program
from repro.interp import interpret
from repro.pta import solve
from repro.transform import eliminate_dead_methods, rename_locals

from tests.program_strategies import ir_programs

_METRICS = ("call_graph_edges", "poly_call_sites", "may_fail_casts",
            "reachable_methods", "escaping_exceptions")

DEAD_CODE = """
class Live { method used() { return this; } }
class Dead {
  method never(x) { return x; }
  method alsoNever() { d = new Dead(); return d; }
}
class Util {
  static method helper(x) { return x; }
  static method unusedHelper() { u = new Util(); return u; }
}
main {
  a = new Live();
  a.used();
  r = Util::helper(a);
}
"""


class TestDeadMethodElimination:
    def test_removes_exactly_the_unreachable(self):
        program = parse_program(DEAD_CODE)
        slim, removed = eliminate_dead_methods(program)
        assert removed == {"Dead.never", "Dead.alsoNever",
                           "Util.unusedHelper"}
        assert "used" in slim.get_class("Live").methods
        assert slim.stats()["methods"] < program.stats()["methods"]

    def test_analysis_results_unchanged(self):
        program = parse_program(DEAD_CODE)
        slim, _ = eliminate_dead_methods(program)
        for config in ("ci", "2obj", "M-2obj"):
            before = run_analysis(program, config).metrics()
            after = run_analysis(slim, config).metrics()
            for metric in _METRICS:
                assert before[metric] == after[metric], (config, metric)

    def test_concrete_execution_unchanged(self):
        program = parse_program(DEAD_CODE)
        slim, _ = eliminate_dead_methods(program)
        assert interpret(program).call_edges == interpret(slim).call_edges

    @given(ir_programs())
    @settings(max_examples=25, deadline=None)
    def test_invariance_on_generated_programs(self, program):
        slim, removed = eliminate_dead_methods(program)
        before = solve(program)
        after = solve(slim)
        assert before.call_graph_edges() == after.call_graph_edges()
        assert before.reachable_methods() == after.reachable_methods()
        assert removed.isdisjoint(after.reachable_methods())

    def test_idempotent(self):
        program = parse_program(DEAD_CODE)
        slim, _ = eliminate_dead_methods(program)
        slimmer, removed_again = eliminate_dead_methods(slim)
        assert removed_again == set()
        assert slimmer.stats() == slim.stats()


class TestRenameLocals:
    def test_renames_locals_only(self):
        src = """
        class A { method m(p) { x = new A(); y = x; return y; } }
        main { a = new A(); r = a.m(a); }
        """
        renamed = rename_locals(parse_program(src))
        method = renamed.get_class("A").methods["m"]
        names = set(method.local_variables())
        assert "p" in names and "this" in names
        assert "x" not in names and "y" not in names
        assert any(name.startswith("v") for name in names)

    def test_sites_preserved(self):
        program = parse_program(DEAD_CODE)
        renamed = rename_locals(program)
        assert set(renamed.alloc_sites()) == set(program.alloc_sites())

    @given(ir_programs())
    @settings(max_examples=25, deadline=None)
    def test_analysis_invariant_under_renaming(self, program):
        renamed = rename_locals(program)
        before = solve(program)
        after = solve(renamed)
        assert before.call_graph_edges() == after.call_graph_edges()
        assert before.object_count == after.object_count
        # per-site cast verdicts identical
        before_casts = {
            (site, frozenset(objs))
            for site, _, objs in before.cast_records()
        }
        after_casts = {
            (site, frozenset(objs))
            for site, _, objs in after.cast_records()
        }
        assert {s for s, _ in before_casts} == {s for s, _ in after_casts}

    def test_renaming_then_printing_roundtrips(self):
        from repro.ir.printer import print_program

        program = rename_locals(parse_program(DEAD_CODE))
        reparsed = parse_program(print_program(program))
        assert reparsed.stats() == program.stats()

    def test_composes_with_dead_code_elimination(self):
        program = parse_program(DEAD_CODE)
        slim, _ = eliminate_dead_methods(rename_locals(program))
        metrics = run_analysis(slim, "M-2obj").metrics()
        baseline = run_analysis(program, "M-2obj").metrics()
        for metric in _METRICS:
            assert metrics[metric] == baseline[metric]
