"""The incremental engine's byte-identity contract: a warm re-solve
changes *work*, never the answer.

Differentials run {cold, incremental} x {bitset, set} and assert
``protocol.result_digest`` equality, alongside the knobs that route
around the warm path (``REPRO_INCR=off``, structural edits, MAHJONG
heaps) and a hypothesis edit-sequence property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pipeline import run_analysis
from repro.incr import (
    IncrementalBase,
    IncrementalSession,
    perturb_method,
    pick_editable_method,
    prepare_warm_start,
)
from repro.pta.bitset import BACKEND_BITSET, BACKEND_SET
from repro.pta.context import selector_for
from repro.pta.solver import Solver
from repro.serve.protocol import result_digest
from repro.workloads import corpus_program, load_profile

from tests.program_strategies import ir_programs

PROGRAMS = {
    "listeners": lambda: corpus_program("listeners"),
    "cache": lambda: corpus_program("cache"),
    "antlr-0.3": lambda: load_profile("antlr", 0.3),
}


def _digest(run):
    assert run.result is not None
    return result_digest(run.result)


class TestWarmColdDifferential:
    """The acceptance matrix: >=3 programs x {ci, 2obj} x both pts
    backends, incremental vs cold, digests byte-identical."""

    @pytest.mark.parametrize("program_name", sorted(PROGRAMS))
    @pytest.mark.parametrize("config", ["ci", "2obj"])
    @pytest.mark.parametrize("backend", [BACKEND_BITSET, BACKEND_SET])
    def test_digest_identity(self, monkeypatch, program_name, config,
                             backend):
        monkeypatch.setenv("REPRO_PTS_BACKEND", backend)
        program = PROGRAMS[program_name]()
        base_run = run_analysis(program, config)
        edited = perturb_method(
            program, pick_editable_method(program, seed=3,
                                          exclude_entry=True), seed=3)
        # enabled=True pins the warm path regardless of the ambient
        # REPRO_INCR (CI runs this file with the knob off too)
        warm_run = run_analysis(
            edited, config,
            incremental=IncrementalBase(program, base_run, enabled=True))
        cold_run = run_analysis(edited, config)
        assert warm_run.incr is not None
        assert warm_run.incr["mode"] == "warm", warm_run.incr
        assert _digest(warm_run) == _digest(cold_run)

    def test_warm_solve_does_less_work(self):
        """The savings half of the contract, measured at the solver:
        fewer worklist pops and almost no re-propagated facts."""
        program = load_profile("antlr", 0.3)
        base = Solver(program, selector_for("2obj")).solve()
        edited = perturb_method(
            program, pick_editable_method(program, seed=3,
                                          exclude_entry=True), seed=3)
        warm_start = prepare_warm_start(base, edited)
        assert warm_start is not None
        cold = Solver(edited, selector_for("2obj"))
        cold_result = cold.solve()
        warm = Solver(edited, selector_for("2obj"), warm_start=warm_start)
        warm_result = warm.solve()
        assert result_digest(warm_result) == result_digest(cold_result)
        assert warm.iterations < cold.iterations
        assert (warm.counters["facts_propagated"]
                < cold.counters["facts_propagated"] // 10)
        assert warm.counters["warm_pairs"] > 0
        assert warm.counters["warm_seed_facts"] > 0


class TestFallbackRouting:
    def _base(self, config="ci"):
        program = corpus_program("listeners")
        return program, run_analysis(program, config)

    def _edit(self, program):
        return perturb_method(
            program, pick_editable_method(program, seed=3,
                                          exclude_entry=True), seed=3)

    def test_env_off_forces_cold(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCR", "off")
        program, base_run = self._base()
        run = run_analysis(self._edit(program), "ci",
                           incremental=IncrementalBase(program, base_run))
        assert run.incr == {"mode": "cold", "reason": "disabled"}

    def test_explicit_enable_beats_env_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCR", "off")
        program, base_run = self._base()
        run = run_analysis(
            self._edit(program), "ci",
            incremental=IncrementalBase(program, base_run, enabled=True))
        assert run.incr is not None and run.incr["mode"] == "warm"

    def test_structural_edit_forces_cold(self):
        program, base_run = self._base()
        from repro.frontend import parse_program

        structural = parse_program("""
class Extra { method m() { return this; } }
main { e = new Extra(); f = e.m(); }
""")
        run = run_analysis(
            structural, "ci",
            incremental=IncrementalBase(program, base_run, enabled=True))
        assert run.incr is not None
        assert run.incr["mode"] == "cold"
        assert "structural" in run.incr["reason"]
        assert _digest(run) == _digest(run_analysis(structural, "ci"))

    def test_mahjong_heap_is_not_warmable(self):
        program, base_run = self._base("M-2obj")
        run = run_analysis(
            self._edit(program), "M-2obj",
            incremental=IncrementalBase(program, base_run, enabled=True))
        assert run.incr is not None
        assert run.incr["mode"] == "cold"
        assert "not warmable" in run.incr["reason"]

    def test_config_mismatch_forces_cold(self):
        program, base_run = self._base("ci")
        run = run_analysis(
            self._edit(program), "2obj",
            incremental=IncrementalBase(program, base_run, enabled=True))
        assert run.incr is not None
        assert run.incr["mode"] == "cold"

    def test_incr_note_lands_in_metrics(self):
        program, base_run = self._base()
        run = run_analysis(self._edit(program), "ci",
                           incremental=IncrementalBase(program, base_run))
        assert run.metrics()["incremental"] == run.incr


class TestEditSequenceProperty:
    """Arbitrary well-formed program, a sequence of seeded single-method
    edits applied through :class:`IncrementalSession` (each step warm
    against the previous fixpoint): every step's digest must equal a
    cold solve of the same version."""

    @given(program=ir_programs(),
           seeds=st.lists(st.integers(0, 1_000_000),
                          min_size=1, max_size=3))
    @settings(max_examples=12, deadline=None)
    def test_session_tracks_cold_digests(self, program, seeds):
        session = IncrementalSession(program, config="ci")
        session.analyze()
        current = program
        for seed in seeds:
            qualname = pick_editable_method(current, seed=seed)
            current = perturb_method(current, qualname, seed=seed)
            run = session.update(current)
            cold = run_analysis(current, "ci")
            assert _digest(run) == _digest(cold)
