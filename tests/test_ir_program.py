"""Unit tests for Program / ClassDecl / Method containers."""

import pytest

from repro.ir import ProgramBuilder
from repro.ir.program import FieldDecl, Method
from repro.ir.statements import New, Return


def build_dispatch_program():
    b = ProgramBuilder()
    b.add_class("A")
    b.add_field("A", "f", "A")
    b.add_class("B", "A")
    b.add_field("B", "g", "A")
    b.add_class("C", "B")
    with b.method("A", "foo") as m:
        m.ret("this")
    with b.method("B", "foo") as m:
        m.ret("this")
    with b.method("A", "bar", params=("x",)) as m:
        m.ret("x")
    with b.method("A", "mk", static=True) as m:
        r = m.new("A")
        m.ret(r)
    with b.main() as m:
        a = m.new("A")
        m.invoke(a, "foo")
    return b.build()


class TestDispatch:
    def test_dispatch_finds_own_method(self):
        p = build_dispatch_program()
        assert p.dispatch("B", "foo").qualified_name == "B.foo"

    def test_dispatch_walks_to_superclass(self):
        p = build_dispatch_program()
        assert p.dispatch("C", "bar").qualified_name == "A.bar"
        assert p.dispatch("C", "foo").qualified_name == "B.foo"

    def test_dispatch_unknown_method_is_none(self):
        p = build_dispatch_program()
        assert p.dispatch("A", "nope") is None

    def test_dispatch_skips_static_methods(self):
        p = build_dispatch_program()
        assert p.dispatch("A", "mk") is None

    def test_dispatch_cached_result_stable(self):
        p = build_dispatch_program()
        first = p.dispatch("C", "foo")
        assert p.dispatch("C", "foo") is first

    def test_static_method_resolution(self):
        p = build_dispatch_program()
        assert p.static_method("A", "mk").qualified_name == "A.mk"
        assert p.static_method("A", "foo") is None
        assert p.static_method("Ghost", "mk") is None


class TestFields:
    def test_fields_of_class_includes_inherited(self):
        p = build_dispatch_program()
        assert set(p.fields_of_class("C")) == {"f", "g"}
        assert set(p.fields_of_class("A")) == {"f"}

    def test_static_fields_excluded_from_instance_fields(self):
        b = ProgramBuilder()
        b.add_class("A")
        b.add_field("A", "inst", "A")
        b.add_field("A", "stat", "A", is_static=True)
        with b.main() as m:
            m.new("A")
        p = b.build()
        assert set(p.fields_of_class("A")) == {"inst"}


class TestSiteTables:
    def test_alloc_site_lookup(self):
        p = build_dispatch_program()
        sites = p.alloc_sites()
        assert len(sites) == 2
        for site, stmt in sites.items():
            assert p.alloc_site(site) is stmt

    def test_containing_class_of_site(self):
        p = build_dispatch_program()
        by_class = {
            p.containing_class_of_site(site) for site in p.alloc_sites()
        }
        assert by_class == {"A", "<Main>"}

    def test_duplicate_alloc_site_rejected(self):
        b = ProgramBuilder()
        b.add_class("A")
        with b.main() as m:
            m.raw(New("x", "A", 1))
            m.raw(New("y", "A", 1))
        with pytest.raises(ValueError, match="duplicate allocation site"):
            b.build()

    def test_stats(self):
        p = build_dispatch_program()
        stats = p.stats()
        assert stats["classes"] == 3
        assert stats["alloc_sites"] == 2
        assert stats["call_sites"] == 1
        assert stats["methods"] == 5  # 4 declared + main


class TestMethod:
    def test_local_variables_include_receiver_and_params(self):
        method = Method("A", "m", ("p", "q"),
                        [New("x", "A", 1), Return("x")])
        names = method.local_variables()
        assert names[0] == "this"
        assert set(names) == {"this", "p", "q", "x"}

    def test_static_method_has_no_receiver(self):
        method = Method("A", "m", (), [Return("r")], is_static=True)
        assert "this" not in method.local_variables()

    def test_return_var_names(self):
        method = Method("A", "m", (), [Return("a"), Return("b")])
        assert method.return_var_names == ("a", "b")

    def test_duplicate_method_rejected(self):
        b = ProgramBuilder()
        b.add_class("A")
        with b.method("A", "foo") as m:
            m.ret("this")
        with pytest.raises(ValueError, match="duplicate method"):
            with b.method("A", "foo") as m:
                m.ret("this")

    def test_duplicate_field_rejected(self):
        b = ProgramBuilder()
        b.add_class("A")
        b.add_field("A", "f", "A")
        with pytest.raises(ValueError, match="duplicate field"):
            b.add_field("A", "f", "A")
