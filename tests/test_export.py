"""Tests for the JSON export module."""

import io
import json

from repro.analysis import run_analysis, run_pre_analysis
from repro.bench.fig8 import run_fig8
from repro.bench.fig9 import run_fig9
from repro.bench.table2 import run_table2
from repro.export import (
    analysis_run_to_dict,
    dump_json,
    fig8_to_dict,
    fig9_to_dict,
    merge_result_to_dict,
    pre_analysis_to_dict,
    table2_to_dict,
)


def roundtrip(payload):
    return json.loads(json.dumps(payload))


class TestMergeExport:
    def test_schema_and_roundtrip(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        payload = merge_result_to_dict(pre.merge)
        assert roundtrip(payload) == payload
        for key in ("objects_before", "objects_after", "reduction",
                    "mom", "class_size_histogram", "equivalence_tests"):
            assert key in payload
        assert payload["objects_before"] >= payload["objects_after"]
        # mom values are representatives present in the map domain
        sites = set(payload["mom"])
        assert all(str(rep) in sites for rep in payload["mom"].values())


class TestPreAnalysisExport:
    def test_contains_phase_timings_and_fpg(self, tiny_program):
        payload = pre_analysis_to_dict(run_pre_analysis(tiny_program))
        assert roundtrip(payload) == payload
        assert set(payload) == {"ci_seconds", "fpg_seconds",
                                "mahjong_seconds", "fpg", "merge"}
        assert payload["fpg"]["objects"] > 0


class TestRunExport:
    def test_successful_run(self, tiny_program):
        payload = analysis_run_to_dict(run_analysis(tiny_program, "M-2obj"))
        assert roundtrip(payload) == payload
        assert payload["succeeded"] is True
        assert payload["heap"] == "mahjong"
        assert payload["sensitivity"] == "2obj"
        assert "call_graph_edges" in payload

    def test_timed_out_run(self, tiny_program):
        payload = analysis_run_to_dict(
            run_analysis(tiny_program, "2obj", timeout_seconds=0.0)
        )
        assert payload["succeeded"] is False
        assert payload["timed_out"] is True


class TestHarnessExports:
    def test_table2(self):
        result = run_table2(profiles=["luindex"], baselines=["2obj"],
                            budget=60, scale=0.2)
        payload = table2_to_dict(result)
        assert roundtrip(payload) == payload
        assert payload["speedups"]["luindex"]["2obj"] is not None
        assert "2obj" in payload["cells"]["luindex"]

    def test_fig8_and_fig9(self):
        payload8 = fig8_to_dict(run_fig8(["luindex"], scale=0.2))
        assert roundtrip(payload8) == payload8
        assert 0 < payload8["average_reduction"] < 1
        payload9 = fig9_to_dict(run_fig9("luindex", scale=0.2))
        assert roundtrip(payload9) == payload9
        assert payload9["points"]


class TestDumpJson:
    def test_to_path(self, tmp_path, tiny_program):
        pre = run_pre_analysis(tiny_program)
        target = tmp_path / "merge.json"
        dump_json(merge_result_to_dict(pre.merge), str(target))
        loaded = json.loads(target.read_text())
        assert loaded["objects_before"] == pre.merge.object_count_before
        assert target.read_text().endswith("\n")

    def test_to_handle(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        buffer = io.StringIO()
        dump_json(merge_result_to_dict(pre.merge), buffer)
        assert json.loads(buffer.getvalue())

    def test_stable_output(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        a, b = io.StringIO(), io.StringIO()
        dump_json(merge_result_to_dict(pre.merge), a)
        dump_json(merge_result_to_dict(pre.merge), b)
        assert a.getvalue() == b.getvalue()
