"""Executable soundness: every concrete fact is over-approximated by
every analysis configuration.

The strongest correctness property the repository checks: arbitrary
generated programs are *run* by the reference interpreter
(:mod:`repro.interp`), and each runtime fact — variable bindings, call
edges, failed casts, escaping exceptions — must be contained in the
corresponding analysis answer, for the context-insensitive baseline,
the context-sensitive analyses, and the MAHJONG variants alike.
"""

from hypothesis import given, settings

from repro.analysis import run_analysis, run_pre_analysis
from repro.clients import analyze_exceptions, check_casts
from repro.interp import interpret
from repro.workloads import TINY, generate

from tests.program_strategies import ir_programs

_CONFIGS = ("ci", "2cs", "2obj", "2type", "M-ci", "M-2obj", "T-2obj")
_SETTINGS = dict(max_examples=25, deadline=None)


def assert_trace_covered(program, trace, result) -> None:
    # variable bindings: concrete sites ⊆ analysis sites
    for (method, var), sites in trace.var_bindings.items():
        analysis_sites = set()
        for obj in result.var_points_to_ids(method, var):
            analysis_sites |= result.object_sites(obj)
        missing = sites - analysis_sites
        assert not missing, (method, var, missing)
    # call edges
    assert trace.call_edges <= result.call_graph_edges()
    # executed methods are reachable
    assert trace.executed_methods <= result.reachable_methods()
    # heap stores: concrete (base, field, value) covered by field facts
    field_facts = set()
    for base_obj, field_name, pointee_obj in result.field_points_to():
        for base_site in result.object_sites(base_obj):
            for value_site in result.object_sites(pointee_obj):
                field_facts.add((base_site, field_name, value_site))
    assert trace.heap_stores <= field_facts
    # failed casts flagged as may-fail
    may_fail = check_casts(result).may_fail_sites
    assert trace.failed_casts <= may_fail
    # exceptions: concrete exceptional exits covered
    for method, sites in trace.exceptions.items():
        analysis_sites = set()
        for obj in result.exception_points_to(method):
            analysis_sites |= result.object_sites(obj)
        assert sites <= analysis_sites, method


class TestGeneratedPrograms:
    @given(ir_programs())
    @settings(**_SETTINGS)
    def test_all_configs_over_approximate_execution(self, program):
        trace = interpret(program)
        pre = run_pre_analysis(program)
        for config in _CONFIGS:
            run = run_analysis(
                program, config,
                pre=pre if config.startswith("M-") else None,
            )
            assert_trace_covered(program, trace, run.result)


class TestWorkloadPrograms:
    def test_tiny_workload_execution_covered(self, tiny_program):
        trace = interpret(tiny_program)
        assert trace.call_edges  # the workload actually runs code
        for config in ("ci", "M-2obj"):
            result = run_analysis(tiny_program, config).result
            assert_trace_covered(tiny_program, trace, result)

    def test_exceptional_workload_covered(self):
        from dataclasses import replace

        program = generate(replace(TINY, exception_sites=4, seed=5))
        trace = interpret(program)
        assert trace.exceptions
        result = run_analysis(program, "2obj").result
        assert_trace_covered(program, trace, result)
