"""Unit tests for analysis configuration parsing and the pipeline."""

import pytest

from repro.analysis import (
    PAPER_BASELINES,
    PAPER_CONFIGS,
    parse_config,
    run_analysis,
    run_pre_analysis,
)


class TestConfigParsing:
    @pytest.mark.parametrize("name, heap, sensitivity", [
        ("ci", "alloc-site", "ci"),
        ("2obj", "alloc-site", "2obj"),
        ("M-3obj", "mahjong", "3obj"),
        ("T-2type", "alloc-type", "2type"),
        ("M-ci", "mahjong", "ci"),
        ("T-2cs", "alloc-type", "2cs"),
    ])
    def test_valid_names(self, name, heap, sensitivity):
        config = parse_config(name)
        assert config.heap == heap
        assert config.sensitivity == sensitivity
        assert str(config) == name

    @pytest.mark.parametrize("bad", ["M-", "X-2obj", "2objx", "m-2obj", ""])
    def test_invalid_names(self, bad):
        with pytest.raises(ValueError):
            parse_config(bad)

    def test_needs_pre_analysis_only_for_mahjong(self):
        assert parse_config("M-2obj").needs_pre_analysis
        assert not parse_config("2obj").needs_pre_analysis
        assert not parse_config("T-2obj").needs_pre_analysis

    def test_paper_config_lists(self):
        assert len(PAPER_BASELINES) == 5
        assert len(PAPER_CONFIGS) == 10
        assert all(parse_config(c) for c in PAPER_CONFIGS)


class TestPipeline:
    def test_pre_analysis_artifacts(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        assert pre.result.selector_name == "ci"
        assert len(pre.fpg) > 0
        assert pre.merge.object_count_after <= pre.merge.object_count_before
        assert pre.total_seconds >= 0
        assert pre.abstraction.mom

    def test_mahjong_run_builds_pre_automatically(self, tiny_program):
        run = run_analysis(tiny_program, "M-2obj")
        assert run.pre is not None
        assert run.succeeded

    def test_pre_artifacts_are_reused_when_passed(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        run = run_analysis(tiny_program, "M-2obj", pre=pre)
        assert run.pre is pre

    def test_non_mahjong_run_has_no_pre(self, tiny_program):
        run = run_analysis(tiny_program, "2obj")
        assert run.pre is None

    def test_metrics_keys(self, tiny_program):
        metrics = run_analysis(tiny_program, "M-2cs").metrics()
        for key in ("analysis", "main_seconds", "call_graph_edges",
                    "poly_call_sites", "may_fail_casts", "abstract_objects",
                    "pre_seconds"):
            assert key in metrics
        assert metrics["analysis"] == "M-2cs"

    def test_metrics_cached(self, tiny_program):
        run = run_analysis(tiny_program, "ci")
        assert run.metrics() is run.metrics()

    def test_timeout_marks_run(self, tiny_program):
        run = run_analysis(tiny_program, "2obj", timeout_seconds=0.0)
        assert run.timed_out
        assert not run.succeeded
        metrics = run.metrics()
        assert metrics["timed_out"] is True
        assert "call_graph_edges" not in metrics

    def test_mahjong_uses_fewer_objects(self, tiny_program):
        base = run_analysis(tiny_program, "2obj").metrics()
        mahjong = run_analysis(tiny_program, "M-2obj").metrics()
        assert mahjong["abstract_objects"] < base["abstract_objects"]

    def test_alloc_type_uses_fewest_site_keys(self, tiny_program):
        t_run = run_analysis(tiny_program, "T-ci").metrics()
        ci_run = run_analysis(tiny_program, "ci").metrics()
        assert t_run["abstract_objects"] <= ci_run["abstract_objects"]
