"""Unit tests for analysis configuration parsing and the pipeline."""

import pytest

from repro.analysis import (
    PAPER_BASELINES,
    PAPER_CONFIGS,
    parse_config,
    run_analysis,
    run_pre_analysis,
)


class TestConfigParsing:
    @pytest.mark.parametrize("name, heap, sensitivity", [
        ("ci", "alloc-site", "ci"),
        ("2obj", "alloc-site", "2obj"),
        ("M-3obj", "mahjong", "3obj"),
        ("T-2type", "alloc-type", "2type"),
        ("M-ci", "mahjong", "ci"),
        ("T-2cs", "alloc-type", "2cs"),
    ])
    def test_valid_names(self, name, heap, sensitivity):
        config = parse_config(name)
        assert config.heap == heap
        assert config.sensitivity == sensitivity
        assert str(config) == name

    @pytest.mark.parametrize("bad", ["M-", "X-2obj", "2objx", "m-2obj", ""])
    def test_invalid_names(self, bad):
        with pytest.raises(ValueError):
            parse_config(bad)

    def test_needs_pre_analysis_only_for_mahjong(self):
        assert parse_config("M-2obj").needs_pre_analysis
        assert not parse_config("2obj").needs_pre_analysis
        assert not parse_config("T-2obj").needs_pre_analysis

    def test_paper_config_lists(self):
        assert len(PAPER_BASELINES) == 5
        assert len(PAPER_CONFIGS) == 10
        assert all(parse_config(c) for c in PAPER_CONFIGS)


class TestPipeline:
    def test_pre_analysis_artifacts(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        assert pre.result.selector_name == "ci"
        assert len(pre.fpg) > 0
        assert pre.merge.object_count_after <= pre.merge.object_count_before
        assert pre.total_seconds >= 0
        assert pre.abstraction.mom

    def test_mahjong_run_builds_pre_automatically(self, tiny_program):
        run = run_analysis(tiny_program, "M-2obj")
        assert run.pre is not None
        assert run.succeeded

    def test_pre_artifacts_are_reused_when_passed(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        run = run_analysis(tiny_program, "M-2obj", pre=pre)
        assert run.pre is pre

    def test_non_mahjong_run_has_no_pre(self, tiny_program):
        run = run_analysis(tiny_program, "2obj")
        assert run.pre is None

    def test_metrics_keys(self, tiny_program):
        metrics = run_analysis(tiny_program, "M-2cs").metrics()
        for key in ("analysis", "main_seconds", "call_graph_edges",
                    "poly_call_sites", "may_fail_casts", "abstract_objects",
                    "pre_seconds"):
            assert key in metrics
        assert metrics["analysis"] == "M-2cs"

    def test_metrics_cached(self, tiny_program):
        run = run_analysis(tiny_program, "ci")
        assert run.metrics() is run.metrics()

    def test_timeout_marks_run(self, tiny_program):
        run = run_analysis(tiny_program, "2obj", timeout_seconds=0.0)
        assert run.timed_out
        assert not run.succeeded
        metrics = run.metrics()
        assert metrics["timed_out"] is True
        assert "call_graph_edges" not in metrics

    def test_mahjong_uses_fewer_objects(self, tiny_program):
        base = run_analysis(tiny_program, "2obj").metrics()
        mahjong = run_analysis(tiny_program, "M-2obj").metrics()
        assert mahjong["abstract_objects"] < base["abstract_objects"]

    def test_alloc_type_uses_fewest_site_keys(self, tiny_program):
        t_run = run_analysis(tiny_program, "T-ci").metrics()
        ci_run = run_analysis(tiny_program, "ci").metrics()
        assert t_run["abstract_objects"] <= ci_run["abstract_objects"]


class TestExhaustionHandling:
    def test_pre_phase_timeout_is_caught_and_attributed(self, tiny_program):
        # a zero budget expires inside the ci pre-analysis solve; the
        # exhaustion must not escape run_analysis as a raw exception
        run = run_analysis(tiny_program, "M-2obj", timeout_seconds=0.0)
        assert run.timed_out
        assert not run.succeeded
        assert run.failed_phase == "pre"
        assert run.exhaustion_cause == "time"
        metrics = run.metrics()
        assert metrics["failed_phase"] == "pre"
        assert metrics["attempts"][0]["config"] == "M-2obj"

    def test_normal_run_metrics_carry_no_provenance_keys(self, tiny_program):
        metrics = run_analysis(tiny_program, "M-2obj").metrics()
        for key in ("degraded_from", "failed_phase", "exhaustion_cause",
                    "attempts"):
            assert key not in metrics


class TestDegradationLadder:
    def test_ladder_off_by_default(self, tiny_program):
        run = run_analysis(tiny_program, "2obj", timeout_seconds=0.0)
        assert run.timed_out
        assert run.degraded_from is None

    def test_pre_timeout_with_ladder_reaches_bottom(self, tiny_program):
        # a zero wall-clock budget kills every rung, including the
        # allocation-site fallback and ci: the run stays usable-shaped
        # (provenance-complete) but timed out
        run = run_analysis(tiny_program, "M-2obj", timeout_seconds=0.0,
                           degrade=True)
        assert run.timed_out
        assert run.degraded_from == "M-2obj"
        assert [a.config for a in run.attempts] == [
            "M-2obj", "2obj", "2type", "ci"]
        assert all(a.cause == "time" for a in run.attempts)

    def test_explicit_ladder_sequence(self, tiny_program):
        from repro import faults
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec(point="main-boundary", times=1)])
        with faults.active(plan):
            run = run_analysis(tiny_program, "M-2obj",
                               degrade="T-2obj,ci")
        faults.uninstall()
        assert run.degraded
        assert run.config.name == "T-2obj"
        assert run.degraded_from == "M-2obj"

    def test_rescued_run_metrics_are_complete(self, tiny_program):
        from repro import faults
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec(point="main-boundary", times=1)])
        with faults.active(plan):
            run = run_analysis(tiny_program, "M-3obj", degrade=True)
        faults.uninstall()
        assert run.degraded
        assert not run.timed_out
        metrics = run.metrics()
        # the acceptance bar: full client metrics plus provenance
        for key in ("call_graph_edges", "poly_call_sites", "may_fail_casts",
                    "abstract_objects", "degraded_from", "attempts"):
            assert key in metrics
        assert metrics["degraded_from"] == "M-3obj"
        assert metrics["analysis"] == "M-2obj"
