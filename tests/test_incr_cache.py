"""The on-disk artifact cache: roundtrips, content addressing, and the
corruption contract (any unreadable entry is a logged miss, never a
crash or a wrong artifact)."""

from __future__ import annotations

import os
import pickle

import pytest

from repro import obs
from repro.analysis.pipeline import run_pre_analysis
from repro.incr import (
    ArtifactCache,
    FPGArtifact,
    MergeArtifact,
    PreSummaryArtifact,
    program_fingerprint,
)
from repro.obs import InMemorySink, Instant, Tracer
from repro.workloads import corpus_program


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    obs.uninstall()


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(str(tmp_path))


def _fpg_artifact():
    return FPGArtifact(fpg={"edges": [(1, "f", 2)]}, ci_seconds=0.1,
                       fpg_seconds=0.2)


class TestRoundtrip:
    @pytest.mark.parametrize("kind,artifact", [
        ("pre", PreSummaryArtifact(stats=(("methods", 3),), seconds=0.5)),
        ("fpg", _fpg_artifact()),
        ("merge", MergeArtifact(merge={"o1": "o2"}, seconds=0.3)),
    ])
    def test_store_then_load(self, cache, kind, artifact):
        assert cache.store(kind, "key", artifact)
        assert cache.load(kind, "key") == artifact
        stats = cache.stats()
        assert stats["stores"] == 1 and stats["hits"] == 1

    def test_absent_key_is_a_miss(self, cache):
        assert cache.load("fpg", "never-stored") is None
        assert cache.stats()["misses"] == 1

    def test_wrong_kind_rejected_at_store(self, cache):
        with pytest.raises(TypeError):
            cache.store("fpg", "key", MergeArtifact(merge={}, seconds=0.0))
        with pytest.raises(ValueError):
            cache.key_for("unknown-kind", corpus_program("cache"), "c")


class TestPickleHygiene:
    """The artifact dataclasses must survive a pickle roundtrip intact
    — they are the on-disk payload format."""

    @pytest.mark.parametrize("artifact", [
        PreSummaryArtifact(stats=(("methods", 3), ("sites", 9)),
                           seconds=0.5),
        _fpg_artifact(),
        MergeArtifact(merge={"o1": "o2"}, seconds=0.3),
    ])
    def test_roundtrip_equality(self, artifact):
        clone = pickle.loads(pickle.dumps(
            artifact, protocol=pickle.HIGHEST_PROTOCOL))
        assert clone == artifact
        assert type(clone) is type(artifact)

    def test_real_pipeline_artifacts_are_picklable(self, cache):
        """The FPG and merge artifacts the pipeline actually stores
        (containing real FPG/merge objects) must serialize."""
        program = corpus_program("cache")
        run_pre_analysis(program, artifact_cache=cache)
        assert cache.stats()["stores"] == 2
        warm = run_pre_analysis(program, artifact_cache=cache)
        assert set(warm.cache_hits) == {"fpg", "merge"}
        assert warm.result is None  # served from disk; no ci re-solve


def _traced_sink():
    sink = InMemorySink()
    tracer = Tracer(sinks=(sink,))
    obs.install(tracer)
    return sink


def _corrupt_instants(sink):
    return [event for event in sink.events
            if isinstance(event, Instant)
            and event.name == "artifact-cache:corrupt"]


class TestCorruptionIsAMiss:
    """Fault injection: every flavor of on-disk damage must read as a
    logged miss (with the entry dropped so a later store heals it)."""

    def _stored_path(self, cache):
        cache.store("fpg", "key", _fpg_artifact())
        (name,) = [n for n in os.listdir(cache.directory)
                   if n.endswith(".artifact")]
        return os.path.join(cache.directory, name)

    @pytest.mark.parametrize("damage", [
        lambda raw: b"not-the-magic\n" + raw.split(b"\n", 1)[1],
        lambda raw: raw[: len(raw) // 2],          # truncated payload
        lambda raw: raw[:-8] + b"\x00" * 8,        # scribbled payload
        lambda raw: raw + b"trailing-garbage",     # length mismatch
        lambda raw: b"",                           # empty file
    ], ids=["bad-magic", "truncated", "scribbled", "lengthened", "empty"])
    def test_damaged_entry(self, cache, damage):
        sink = _traced_sink()
        path = self._stored_path(cache)
        with open(path, "rb") as handle:
            raw = handle.read()
        with open(path, "wb") as handle:
            handle.write(damage(raw))

        assert cache.load("fpg", "key") is None
        stats = cache.stats()
        assert stats["corrupt"] == 1 and stats["misses"] == 1
        events = _corrupt_instants(sink)
        assert len(events) == 1 and events[0].attrs["kind"] == "fpg"
        # the corrupt file is dropped, so a re-store heals the entry
        assert not os.path.exists(path)
        assert cache.store("fpg", "key", _fpg_artifact())
        assert cache.load("fpg", "key") == _fpg_artifact()

    def test_valid_pickle_of_wrong_type_is_a_miss(self, cache):
        sink = _traced_sink()
        path = self._stored_path(cache)
        # a well-formed entry whose payload unpickles to the wrong class
        other = ArtifactCache(cache.directory)
        other.store("merge", "other", MergeArtifact(merge={}, seconds=0.0))
        merge_path = other._path("other")
        os.replace(merge_path, path)
        assert cache.load("fpg", "key") is None
        assert _corrupt_instants(sink)

    def test_unpicklable_store_is_a_logged_failure(self, cache):
        sink = _traced_sink()
        unpicklable = FPGArtifact(fpg=lambda: None, ci_seconds=0.0,
                                  fpg_seconds=0.0)
        assert cache.store("fpg", "key", unpicklable) is False
        assert cache.stats()["store_errors"] == 1
        assert any(isinstance(e, Instant)
                   and e.name == "artifact-cache:store-error"
                   for e in sink.events)


class TestContentAddressing:
    def test_key_varies_with_program_text(self, cache):
        a = cache.key_for("fpg", corpus_program("cache"), "c")
        b = cache.key_for("fpg", corpus_program("listeners"), "c")
        assert a != b

    def test_key_varies_with_component_and_kind(self, cache):
        program = corpus_program("cache")
        assert (cache.key_for("fpg", program, "backend=bitset")
                != cache.key_for("fpg", program, "backend=set"))
        assert (cache.key_for("fpg", program, "c")
                != cache.key_for("merge", program, "c"))

    def test_key_varies_with_env_knobs(self, cache, monkeypatch):
        program = corpus_program("cache")
        monkeypatch.delenv("REPRO_SCC", raising=False)
        before = cache.key_for("fpg", program, "c")
        monkeypatch.setenv("REPRO_SCC", "off")
        assert cache.key_for("fpg", program, "c") != before

    def test_fingerprint_is_stable_across_parses(self):
        assert (program_fingerprint(corpus_program("cache"))
                == program_fingerprint(corpus_program("cache")))
