"""Tests for introspective (selective) context sensitivity."""

from repro.analysis import (
    refinement_set,
    run_analysis,
    run_introspective,
    run_pre_analysis,
)
from repro.frontend import parse_program
from repro.pta.context import (
    EMPTY_CONTEXT,
    IntrospectiveSensitive,
    ObjectSensitive,
    ReceiverInfo,
    TypeSensitive,
    wants_type_elements,
)

HOT_COLD = """
class Cold {
  method work(x) { return x; }
}
class Hot {
  method work(x) { return x; }
}
main {
  cold = new Cold();
  v0 = new Object();
  r0 = cold.work(v0);
  h1 = new Hot(); h2 = new Hot(); h3 = new Hot();
  v1 = new Object();
  a = h1.work(v1);
  b = h2.work(v1);
  c = h3.work(v1);
}
"""


class TestSelector:
    def recv(self, element):
        return ReceiverInfo(0, (), element)

    def test_unrefined_callee_goes_context_insensitive(self):
        selector = IntrospectiveSensitive(
            ObjectSensitive(2), lambda q: q == "A.cheap"
        )
        refined_ctx = selector.select_virtual((), 1, self.recv(5), "A.cheap")
        hot_ctx = selector.select_virtual((), 1, self.recv(5), "A.hot")
        assert refined_ctx == (5,)
        assert hot_ctx == EMPTY_CONTEXT

    def test_unknown_callee_defaults_to_refined(self):
        selector = IntrospectiveSensitive(ObjectSensitive(2), lambda q: False)
        assert selector.select_virtual((), 1, self.recv(5), None) == (5,)

    def test_static_selection_also_gated(self):
        selector = IntrospectiveSensitive(
            ObjectSensitive(2), lambda q: False
        )
        assert selector.select_static((9,), 1, "A.hot") == EMPTY_CONTEXT

    def test_name_and_type_element_passthrough(self):
        selector = IntrospectiveSensitive(TypeSensitive(2), lambda q: True)
        assert selector.name == "introspective-2type"
        assert wants_type_elements(selector)
        assert not wants_type_elements(
            IntrospectiveSensitive(ObjectSensitive(2), lambda q: True)
        )


class TestRefinementSet:
    def test_threshold_splits_hot_and_cold(self):
        program = parse_program(HOT_COLD)
        pre = run_pre_analysis(program)
        refined = refinement_set(pre, program, threshold=2)
        assert "Cold.work" in refined       # one receiver object
        assert "Hot.work" not in refined    # three receiver objects
        assert "<Main>.main" in refined     # static methods always refined

    def test_large_threshold_refines_everything(self):
        program = parse_program(HOT_COLD)
        pre = run_pre_analysis(program)
        refined = refinement_set(pre, program, threshold=100)
        assert "Hot.work" in refined


class TestEndToEnd:
    def test_precision_between_ci_and_full(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        ci = run_analysis(tiny_program, "ci").result.call_graph_edges()
        full = run_analysis(tiny_program, "2obj").result.call_graph_edges()
        intro = run_introspective(
            tiny_program, "2obj", threshold=2, pre=pre
        ).result.call_graph_edges()
        assert full <= intro <= ci

    def test_introspective_matches_full_when_all_refined(self, tiny_program):
        pre = run_pre_analysis(tiny_program)
        full = run_analysis(tiny_program, "2obj").metrics()
        intro = run_introspective(
            tiny_program, "2obj", threshold=10 ** 6, pre=pre
        ).metrics()
        for metric in ("call_graph_edges", "poly_call_sites",
                       "may_fail_casts"):
            assert full[metric] == intro[metric]

    def test_introspective_cuts_contexts_on_hot_methods(self):
        program = parse_program(HOT_COLD)
        pre = run_pre_analysis(program)
        full = run_analysis(program, "2obj").result
        intro = run_introspective(program, "2obj", threshold=2,
                                  pre=pre).result
        assert len(intro.contexts_of_method("Hot.work")) == 1
        assert len(full.contexts_of_method("Hot.work")) == 3

    def test_run_is_labeled(self, tiny_program):
        run = run_introspective(tiny_program, "2obj", threshold=4)
        assert run.config.name == "I-2obj"
        assert run.metrics()["analysis"] == "I-2obj"
