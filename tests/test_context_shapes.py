"""Exact context-shape integration tests.

The selector unit tests check truncation arithmetic; these check the
*actual context tuples* the solver produces on small programs, for each
sensitivity — including how MAHJONG rewrites them (empty heap contexts
for merged objects, representative sites as elements).
"""

from repro.analysis import run_analysis, run_pre_analysis
from repro.frontend import parse_program
from repro.pta import selector_for, solve

NESTED = """
class Inner { method leaf() { return this; } }
class Outer {
  method makeInner() {
    i = new Inner();
    r = i.leaf();
    return i;
  }
}
main {
  o1 = new Outer();
  o2 = new Outer();
  a = o1.makeInner();
  b = o2.makeInner();
}
"""
# Sites: 1 = new Inner (in Outer.makeInner), 2 = new Outer (o1),
# 3 = new Outer (o2).


class TestCallSiteContexts:
    def test_1cs_contexts_are_single_call_sites(self):
        r = solve(parse_program(NESTED), selector_for("1cs"))
        contexts = r.contexts_of_method("Outer.makeInner")
        # called from call sites 2 and 3 (site 1 is i.leaf())
        assert contexts == {(2,), (3,)}

    def test_2cs_contexts_are_chains(self):
        r = solve(parse_program(NESTED), selector_for("2cs"))
        leaf_contexts = r.contexts_of_method("Inner.leaf")
        # leaf called at site 1 from makeInner under (2,) and (3,)
        assert leaf_contexts == {(2, 1), (3, 1)}

    def test_main_always_empty_context(self):
        r = solve(parse_program(NESTED), selector_for("2cs"))
        assert r.contexts_of_method("<Main>.main") == {()}


class TestObjectContexts:
    def test_2obj_contexts_are_receiver_sites(self):
        r = solve(parse_program(NESTED), selector_for("2obj"))
        contexts = r.contexts_of_method("Outer.makeInner")
        assert contexts == {(2,), (3,)}

    def test_2obj_heap_contexts_on_inner_objects(self):
        r = solve(parse_program(NESTED), selector_for("2obj"))
        inner_heap_ctxs = {
            r.object_heap_context(o)
            for o in r.objects() if r.object_class(o) == "Inner"
        }
        # one Inner per Outer receiver: heap ctx = (receiver site,)
        assert inner_heap_ctxs == {(2,), (3,)}

    def test_3obj_leaf_contexts_chain_receivers(self):
        r = solve(parse_program(NESTED), selector_for("3obj"))
        leaf_contexts = r.contexts_of_method("Inner.leaf")
        # receiver Inner allocated at site 1 under heap ctx (outer site,)
        assert leaf_contexts == {(2, 1), (3, 1)}


class TestTypeContexts:
    def test_2type_contexts_are_containing_classes(self):
        r = solve(parse_program(NESTED), selector_for("2type"))
        contexts = r.contexts_of_method("Outer.makeInner")
        # both Outers allocated in <Main>, so one merged context
        assert contexts == {("<Main>",)}

    def test_2type_inner_context_is_declaring_class(self):
        r = solve(parse_program(NESTED), selector_for("2type"))
        leaf_contexts = r.contexts_of_method("Inner.leaf")
        # Inner allocated inside class Outer
        assert leaf_contexts == {("<Main>", "Outer")}


class TestMahjongContextRewriting:
    MERGEABLE = """
    class Holder {
      field kept: Thing;
      method fill() {
        t = new Thing();
        this.kept = t;
        r = t.poke();
        return t;
      }
    }
    class Thing { method poke() { return this; } }
    main {
      h1 = new Holder();
      h2 = new Holder();
      a = h1.fill();
      b = h2.fill();
    }
    """
    # Sites: 1 = new Thing (in fill), 2/3 = the Holders.

    def test_merged_receivers_collapse_contexts(self):
        program = parse_program(self.MERGEABLE)
        pre = run_pre_analysis(program)
        assert pre.merge.mom[2] == pre.merge.mom[3]  # Holders merge
        base = run_analysis(program, "2obj").result
        merged = run_analysis(program, "M-2obj", pre=pre).result
        assert base.contexts_of_method("Holder.fill") == {(2,), (3,)}
        # after merging, one context, keyed by the representative site
        representative = pre.merge.mom[2]
        assert merged.contexts_of_method("Holder.fill") == {
            (representative,)
        }

    def test_merged_objects_have_empty_heap_context(self):
        program = parse_program(self.MERGEABLE)
        pre = run_pre_analysis(program)
        merged = run_analysis(program, "M-3obj", pre=pre).result
        for obj in merged.objects():
            if merged.object_class(obj) == "Holder":
                assert merged.object_heap_context(obj) == ()

    def test_unmerged_objects_keep_heap_contexts(self):
        # the single Thing site is its own class (size 1): NOT merged,
        # so it still gets per-receiver heap contexts under M-2obj...
        program = parse_program(self.MERGEABLE)
        pre = run_pre_analysis(program)
        assert pre.abstraction.class_size(1) == 1
        merged = run_analysis(program, "M-2obj", pre=pre).result
        thing_ctxs = {
            merged.object_heap_context(o)
            for o in merged.objects()
            if merged.object_class(o) == "Thing"
        }
        # ...but its allocator's contexts merged into one, so one ctx
        representative = pre.merge.mom[2]
        assert thing_ctxs == {(representative,)}
