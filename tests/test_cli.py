"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from tests.conftest import FIGURE1_SOURCE


@pytest.fixture
def figure1_file(tmp_path):
    path = tmp_path / "figure1.mj"
    path.write_text(FIGURE1_SOURCE)
    return str(path)


def test_analyze_prints_metrics(figure1_file, capsys):
    assert main(["analyze", figure1_file, "--analysis", "M-2obj"]) == 0
    out = capsys.readouterr().out
    assert "call_graph_edges: 1" in out
    assert "may_fail_casts: 0" in out


def test_analyze_default_analysis(figure1_file, capsys):
    assert main(["analyze", figure1_file]) == 0
    assert "analysis: M-2obj" in capsys.readouterr().out


def test_merge_prints_classes(figure1_file, capsys):
    assert main(["merge", figure1_file]) == 0
    out = capsys.readouterr().out
    assert "objects: 6 -> 4" in out


def test_generate_to_stdout(capsys):
    assert main(["generate", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "class StringBuilder" in out
    assert "main {" in out


def test_generate_to_file(tmp_path, capsys):
    target = tmp_path / "workload.mj"
    assert main(["generate", "tiny", "-o", str(target)]) == 0
    assert "wrote" in capsys.readouterr().out
    from repro.frontend import parse_program

    program = parse_program(target.read_text())
    assert program.stats()["alloc_sites"] > 0


def test_generated_file_reanalyzable(tmp_path, capsys):
    target = tmp_path / "workload.mj"
    main(["generate", "tiny", "-o", str(target)])
    assert main(["analyze", str(target), "--analysis", "M-2cs"]) == 0


def test_analyze_exhausted_exit_code(figure1_file, capsys):
    # a fresh fault per rung exhausts the whole ladder: exit code 3
    # plus a cause+phase diagnostic on stderr
    assert main(["analyze", figure1_file, "--analysis", "M-2obj",
                 "--faults", "main-boundary:times=6"]) == 3
    captured = capsys.readouterr()
    assert "timed_out: True" in captured.out
    assert "time budget exhausted in main phase" in captured.err


def test_analyze_no_degrade_fails_fast(figure1_file, capsys):
    assert main(["analyze", figure1_file, "--analysis", "M-2obj",
                 "--no-degrade", "--faults", "main-boundary"]) == 3
    captured = capsys.readouterr()
    assert "tried: M-2obj" in captured.err


def test_analyze_degrades_with_warning(figure1_file, capsys):
    assert main(["analyze", figure1_file, "--analysis", "M-2obj",
                 "--faults", "main-boundary"]) == 0
    captured = capsys.readouterr()
    assert "degraded_from: M-2obj" in captured.out
    assert "degraded to M-2type" in captured.err


def test_analyze_governor_flags(figure1_file, capsys):
    assert main(["analyze", figure1_file, "--analysis", "2obj",
                 "--no-degrade", "--max-iterations", "1",
                 "--check-stride", "1"]) == 3
    assert "work budget exhausted" in capsys.readouterr().err


def test_batch_subcommand_smoke(capsys):
    assert main(["batch", "--corpus", "cache,iterator",
                 "--config", "M-2obj"]) == 0
    out = capsys.readouterr().out
    assert "totals: 2 ok" in out


def test_batch_strict_exit_code(capsys):
    assert main(["batch", "--corpus", "cache", "--config", "M-2obj",
                 "--strict", "--faults", "main-boundary:kind=crash"]) == 4
    assert "1 failed" in capsys.readouterr().out


def test_unknown_command_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_bench_dispatch_unknown_harness(capsys):
    assert main(["bench", "nope"]) == 2


def test_viz_fpg_to_stdout(figure1_file, capsys):
    assert main(["viz", figure1_file, "--merged"]) == 0
    out = capsys.readouterr().out
    assert out.startswith('digraph "FPG"')
    assert "->" in out


def test_viz_hierarchy(figure1_file, capsys):
    assert main(["viz", figure1_file, "--kind", "hierarchy"]) == 0
    assert '"A" -> "B";' in capsys.readouterr().out


def test_viz_callgraph_to_file(figure1_file, tmp_path, capsys):
    target = tmp_path / "cg.dot"
    assert main(["viz", figure1_file, "--kind", "callgraph",
                 "-o", str(target)]) == 0
    assert "C.foo" in target.read_text()


def test_report_json(figure1_file, tmp_path):
    import json

    target = tmp_path / "report.json"
    assert main(["report", figure1_file, "--analyses", "ci,M-ci",
                 "-o", str(target)]) == 0
    payload = json.loads(target.read_text())
    assert payload["program"]["alloc_sites"] == 6
    assert payload["analyses"]["M-ci"]["call_graph_edges"] == 1
    assert payload["pre_analysis"]["merge"]["objects_after"] == 4
