"""Unit and property tests for the merging engine (Algorithm 1)."""

import pytest
from hypothesis import given, settings

from repro.core.fpg import NULL_OBJECT, FieldPointsToGraph
from repro.core.merging import (
    MergeOptions,
    merge_type_consistent_objects,
)
from repro.core.pathcheck import type_consistent_by_paths

from tests.strategies import dag_field_points_to_graphs, field_points_to_graphs


def classes_of(result):
    return sorted(tuple(sorted(c)) for c in result.classes)


def homogeneous_groups_fpg():
    """Two groups of containers: sites 1-3 store X, sites 4-5 store Y."""
    fpg = FieldPointsToGraph()
    payload = 10
    for obj in (1, 2, 3, 4, 5):
        fpg.add_object(obj, "Box")
    for i, payload_type in [(1, "X"), (2, "X"), (3, "X"), (4, "Y"), (5, "Y")]:
        fpg.add_object(payload, payload_type)
        fpg.add_edge(i, "elem", payload)
        payload += 1
    return fpg


class TestMergeBehaviour:
    def test_groups_merge_by_stored_type(self):
        result = merge_type_consistent_objects(homogeneous_groups_fpg())
        assert (1, 2, 3) in classes_of(result)
        assert (4, 5) in classes_of(result)

    def test_mom_maps_to_in_class_representative(self):
        result = merge_type_consistent_objects(homogeneous_groups_fpg())
        for obj, representative in result.mom.items():
            assert representative in result.class_of(obj)

    def test_mom_is_idempotent(self):
        result = merge_type_consistent_objects(homogeneous_groups_fpg())
        for representative in result.mom.values():
            assert result.mom[representative] == representative

    def test_null_object_never_in_mom(self):
        fpg = homogeneous_groups_fpg()
        fpg.add_null_field(10, "f")
        result = merge_type_consistent_objects(fpg)
        assert NULL_OBJECT not in result.mom

    def test_counts_and_reduction(self):
        result = merge_type_consistent_objects(homogeneous_groups_fpg())
        assert result.object_count_before == 10
        # classes: {1,2,3}, {4,5}, {X payloads 10,11,12}, {Y payloads 13,14}
        assert result.object_count_after == 4
        assert result.reduction == pytest.approx(0.6)

    def test_histogram(self):
        result = merge_type_consistent_objects(homogeneous_groups_fpg())
        assert result.class_size_histogram() == {3: 2, 2: 2}

    def test_empty_fpg(self):
        result = merge_type_consistent_objects(FieldPointsToGraph())
        assert result.mom == {}
        assert result.classes == []
        assert result.reduction == 0.0

    def test_representative_policy(self):
        fpg = homogeneous_groups_fpg()
        low = merge_type_consistent_objects(
            fpg, MergeOptions(representative_policy="min_site"))
        high = merge_type_consistent_objects(
            fpg, MergeOptions(representative_policy="max_site"))
        assert low.mom[2] == 1
        assert high.mom[2] == 3
        assert classes_of(low) == classes_of(high)

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            MergeOptions(strategy="magic")
        with pytest.raises(ValueError):
            MergeOptions(representative_policy="coin_flip")


class TestEquivalenceRelationProperties:
    @given(field_points_to_graphs(max_objects=8))
    @settings(max_examples=60, deadline=None)
    def test_classes_partition_objects(self, fpg):
        result = merge_type_consistent_objects(fpg)
        seen = set()
        for cls in result.classes:
            assert not (cls & seen)
            seen |= cls
        assert seen == set(fpg.objects())

    @given(field_points_to_graphs(max_objects=8))
    @settings(max_examples=60, deadline=None)
    def test_merged_objects_share_a_type(self, fpg):
        result = merge_type_consistent_objects(fpg)
        for cls in result.classes:
            assert len({fpg.type_of(o) for o in cls}) == 1

    @given(field_points_to_graphs(max_objects=7))
    @settings(max_examples=40, deadline=None)
    def test_strategies_produce_identical_quotients(self, fpg):
        rep = merge_type_consistent_objects(
            fpg, MergeOptions(strategy="representatives"))
        allp = merge_type_consistent_objects(
            fpg, MergeOptions(strategy="all_pairs"))
        assert classes_of(rep) == classes_of(allp)

    @given(field_points_to_graphs(max_objects=7))
    @settings(max_examples=25, deadline=None)
    def test_parallel_equals_serial(self, fpg):
        serial = merge_type_consistent_objects(
            fpg, MergeOptions(parallel=False))
        parallel = merge_type_consistent_objects(
            fpg, MergeOptions(parallel=True, threads=4))
        assert classes_of(serial) == classes_of(parallel)


class TestAgainstDefinitionOracle:
    @given(dag_field_points_to_graphs(max_objects=6))
    @settings(max_examples=60, deadline=None)
    def test_quotient_matches_definition_2_1_on_dags(self, fpg):
        """On acyclic FPGs the automata reduction must agree exactly with
        the literal Definition 2.1 path-enumeration check."""
        result = merge_type_consistent_objects(fpg)
        depth_bound = len(fpg) + 1
        objs = sorted(fpg.objects())
        merged = {}
        for cls in result.classes:
            for obj in cls:
                merged[obj] = min(cls)
        for i, oi in enumerate(objs):
            for oj in objs[i + 1:]:
                if fpg.type_of(oi) != fpg.type_of(oj):
                    continue
                expected = type_consistent_by_paths(fpg, oi, oj, depth_bound)
                assert (merged[oi] == merged[oj]) == expected, (oi, oj)
