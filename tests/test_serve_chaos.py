"""Chaos soak: the service under concurrent fault streams.

The serving twin of the batch runner's fault-matrix tests: many
threads, several tenants, a request mix of clean runs, crash faults,
transient faults (some recoverable, some not), injected exhaustion, and
malformed requests — all at once.  The properties soaked for:

* **responsiveness** — every request gets a structured response;
  health answers throughout; the process never dies;
* **tenant isolation** — one tenant's chaos never shows up in another
  tenant's accounting, and the clean tenant's results stay
  byte-identical to a direct run;
* **no bare tracebacks** — every failure is a classified JSON error;
* **drain** — after the storm, SIGTERM-style drain completes with
  zero in-flight requests and admission closed.
"""

import json
import random
import threading

from repro.analysis.pipeline import run_analysis
from repro.frontend import parse_program
from repro.retry import RetryPolicy
from repro.serve.client import ServeClient
from repro.serve.protocol import canonical_json, deterministic_result
from repro.serve.server import AnalysisService, ServeDaemon, ServiceConfig

from .conftest import FIGURE1_SOURCE

TENANTS = ("clean", "crasher", "flaky", "starved")

#: request templates per tenant: (body-extras, acceptable status codes)
CHAOS_MENU = {
    "clean": [({}, {200})],
    "crasher": [
        ({"faults": "main-boundary:kind=crash:times=99"}, {500}),
        ({"faults": "pre-boundary:kind=crash:times=99"}, {500}),
        ({}, {200}),
    ],
    "flaky": [
        ({"faults": "main-boundary:kind=transient:times=1"}, {200}),
        ({"faults": "main-boundary:kind=transient:times=99"}, {503}),
        ({}, {200}),
    ],
    "starved": [
        ({"faults": "main-boundary:kind=exhaust:times=99"}, {200}),
        ({"config": "nonsense"}, {400}),
        ({"program": {"kind": "bogus"}}, {400}),
    ],
}


def _expected_clean_bytes() -> bytes:
    run = run_analysis(parse_program(FIGURE1_SOURCE), "M-2obj")
    return canonical_json(deterministic_result(run))


class TestChaosSoak:
    def test_soak_structured_responses_and_isolation(self):
        service = AnalysisService(ServiceConfig(
            tenants=TENANTS, max_inflight=8, tenant_inflight=2,
            retry=RetryPolicy(max_retries=2, backoff_seconds=0.001),
        ))
        clean_bytes = _expected_clean_bytes()
        violations = []
        admitted_counts = {tenant: 0 for tenant in TENANTS}
        lock = threading.Lock()

        def soak(tenant: str, worker: int) -> None:
            rng = random.Random(worker * 7919 + hash(tenant) % 1000)
            for round_number in range(6):
                extras, acceptable = CHAOS_MENU[tenant][
                    rng.randrange(len(CHAOS_MENU[tenant]))]
                body = {"program": FIGURE1_SOURCE, "config": "M-2obj",
                        "tenant": tenant, **extras}
                try:
                    status, payload = service.handle(
                        "POST", "/v1/analyze", body)
                except Exception as exc:  # noqa: BLE001 - soak must record
                    with lock:
                        violations.append(
                            f"{tenant}/{worker}: handle raised "
                            f"{type(exc).__name__}: {exc}")
                    continue
                problems = []
                # admission pushback is always acceptable under load
                if status not in acceptable | {429}:
                    problems.append(f"status {status}")
                if status != 400:
                    # 400s are rejected before admission and never
                    # reach the tenant ledger
                    with lock:
                        admitted_counts[tenant] += 1
                if not isinstance(payload, dict) or "ok" not in payload:
                    problems.append("unstructured payload")
                if "Traceback" in json.dumps(payload):
                    problems.append("traceback leaked")
                if (tenant == "clean" and status == 200
                        and canonical_json(payload["analysis"]["result"])
                        != clean_bytes):
                    problems.append("clean tenant result corrupted")
                if problems:
                    with lock:
                        violations.append(
                            f"{tenant}/{worker} round {round_number}: "
                            f"{'; '.join(problems)} <- {payload}")

        workers = [
            threading.Thread(target=soak, args=(tenant, index))
            for tenant in TENANTS for index in range(2)
        ]
        for worker in workers:
            worker.start()
        # the server must answer health while the storm runs
        health_codes = set()
        for worker in workers:
            status, _body = service.handle("GET", "/v1/health")
            health_codes.add(status)
            worker.join()
        assert health_codes == {200}
        assert not violations, "\n".join(violations)

        snapshot = service.admission.snapshot()
        assert snapshot["inflight"] == 0
        tenants = snapshot["tenants"]
        # isolation: chaos outcomes stay within their tenant's ledger
        assert "internal" not in tenants["clean"]["outcomes"]
        assert "transient" not in tenants["clean"]["outcomes"]
        assert tenants["clean"]["outcomes"].get("ok", 0) > 0
        for name in TENANTS:
            state = tenants[name]
            assert state["completed"] + state["rejected"] >= \
                admitted_counts[name]
        # the storm over, a clean request still round-trips perfectly
        status, body = service.handle(
            "POST", "/v1/analyze",
            {"program": FIGURE1_SOURCE, "config": "M-2obj",
             "tenant": "clean"})
        assert status == 200
        assert canonical_json(body["analysis"]["result"]) == clean_bytes

        # and drain closes the doors with nothing in flight
        assert service.admission.drain(timeout=10.0) is True
        status, body = service.handle(
            "POST", "/v1/analyze",
            {"program": FIGURE1_SOURCE, "tenant": "clean"})
        assert status == 503
        assert body["error"]["code"] == "draining"


class TestHTTPDrainUnderLoad:
    def test_drain_waits_for_inflight_requests(self):
        """Drain during a slow request: the request completes (not
        killed), new admissions get 503, and the daemon stops cleanly."""
        daemon = ServeDaemon(ServiceConfig(
            port=0, max_inflight=4, tenant_inflight=4))
        serve_thread = threading.Thread(target=daemon.serve_forever,
                                        daemon=True)
        serve_thread.start()
        host, port = daemon.address
        client = ServeClient(f"http://{host}:{port}")
        results = {}

        def slow_request():
            # a cold profile solve: long enough to still be in flight
            # when drain begins
            results["slow"] = client.raw("POST", "/v1/analyze", {
                "program": {"kind": "profile", "name": "luindex",
                            "scale": 0.3},
                "config": "2obj", "cache": False})

        worker = threading.Thread(target=slow_request)
        worker.start()
        # wait for the request to be admitted before draining
        for _ in range(200):
            if daemon.service.admission.inflight > 0:
                break
            threading.Event().wait(0.01)
        drained = daemon.drain(timeout=60.0)
        worker.join(timeout=60.0)
        daemon.server_close()
        serve_thread.join(timeout=10.0)

        assert drained is True
        status, payload = results["slow"]
        assert status == 200, payload
        assert payload["ok"] is True
        assert daemon.service.admission.inflight == 0


class TestSubprocessSigterm:
    def test_sigterm_drains_and_exits_zero(self):
        """The real signal path: boot the daemon as a subprocess, do a
        little work, SIGTERM it, and require a clean exit with the
        farewell line."""
        from repro.bench.serve import boot_server

        server = boot_server(("--max-retries", "1"))
        try:
            client = ServeClient(server.url)
            out = client.analyze(FIGURE1_SOURCE, config="ci")
            assert out["analysis"]["status"] == "ok"
        finally:
            exit_code = server.terminate_and_wait(timeout=30.0)
        assert exit_code == 0
        output = server.process.stdout.read()
        assert "drained cleanly" in output
