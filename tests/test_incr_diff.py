"""Structural diffing between program versions: body edits are
warm-startable, anything touching dispatch/hierarchy/field shape is
classified structural and forces a cold solve."""

from __future__ import annotations

from repro.frontend import parse_program
from repro.incr import (
    diff_programs,
    method_fingerprint,
    perturb_method,
    pick_editable_method,
)
from repro.workloads import corpus_program

BASE_SOURCE = """
class A { field f: A; method foo() { return this; } }
class B extends A { method foo() { v = new A(); return v; } }
main {
  x = new B();
  y = x.foo();
}
"""


def _variant(source: str) -> object:
    return parse_program(source)


class TestClassification:
    def test_identical_programs_diff_empty(self):
        delta = diff_programs(_variant(BASE_SOURCE), _variant(BASE_SOURCE))
        assert delta.is_empty and not delta.is_structural
        assert delta.edited == ()

    def test_body_edit_is_changed_not_structural(self):
        old = corpus_program("cache")
        qualname = pick_editable_method(old, seed=1, exclude_entry=True)
        new = perturb_method(old, qualname, seed=1)
        delta = diff_programs(old, new)
        assert delta.changed == (qualname,)
        assert not delta.is_structural
        assert delta.edited == (qualname,)

    def test_method_addition_is_structural(self):
        new = _variant(BASE_SOURCE.replace(
            "class A { field f: A; method foo() { return this; } }",
            "class A { field f: A; method foo() { return this; } "
            "method bar() { return this; } }"))
        delta = diff_programs(_variant(BASE_SOURCE), new)
        assert delta.is_structural
        assert any("A.bar" in reason for reason in delta.structural)

    def test_method_removal_is_a_body_edit(self):
        """A vanished method is retractable through its cone (its sites
        taint), unlike an *added* method, which creates dispatch
        targets the old constraint graph never recorded."""
        old = _variant(BASE_SOURCE.replace(
            "class A { field f: A; method foo() { return this; } }",
            "class A { field f: A; method foo() { return this; } "
            "method bar() { return this; } }"))
        delta = diff_programs(old, _variant(BASE_SOURCE))
        assert not delta.is_structural
        assert "A.bar" in delta.removed
        assert "A.bar" in delta.edited

    def test_hierarchy_edit_is_structural(self):
        new = _variant(BASE_SOURCE.replace("class B extends A",
                                           "class B"))
        delta = diff_programs(_variant(BASE_SOURCE), new)
        assert delta.is_structural
        assert any("hierarchy" in reason for reason in delta.structural)

    def test_field_shape_edit_is_structural(self):
        new = _variant(BASE_SOURCE.replace("field f: A;",
                                           "field f: A; field g: A;"))
        delta = diff_programs(_variant(BASE_SOURCE), new)
        assert delta.is_structural
        assert any("fields" in reason for reason in delta.structural)


class TestEditedSites:
    def test_edited_sites_span_old_and_new_bodies(self):
        old = corpus_program("cache")
        qualname = pick_editable_method(old, seed=2, exclude_entry=True)
        new = perturb_method(old, qualname, seed=2)
        delta = diff_programs(old, new)
        from repro.incr.diff import _method_sites

        old_method = next(m for m in old.all_methods()
                          if m.qualified_name == qualname)
        new_method = next(m for m in new.all_methods()
                          if m.qualified_name == qualname)
        assert _method_sites(old_method) <= delta.edited_sites
        assert delta.edited_sites <= (_method_sites(old_method)
                                      | _method_sites(new_method))

    def test_unedited_program_has_no_sites(self):
        program = corpus_program("cache")
        assert diff_programs(program, program).edited_sites == frozenset()


class TestFingerprint:
    def test_fingerprint_stable_across_parses(self):
        a = {m.qualified_name: method_fingerprint(m)
             for m in _variant(BASE_SOURCE).all_methods()}
        b = {m.qualified_name: method_fingerprint(m)
             for m in _variant(BASE_SOURCE).all_methods()}
        assert a == b

    def test_fingerprint_sees_site_ids(self):
        """Two bodies differing only in a cast's site id must not be
        conflated (``Cast.__str__`` omits the site; ``repr`` keeps
        it)."""
        old = corpus_program("downcast_pipeline")
        for method in old.all_methods():
            assert method_fingerprint(method) == method_fingerprint(method)
        qualname = pick_editable_method(old, seed=5, exclude_entry=True)
        new = perturb_method(old, qualname, seed=5)
        old_fp = {m.qualified_name: method_fingerprint(m)
                  for m in old.all_methods()}
        new_fp = {m.qualified_name: method_fingerprint(m)
                  for m in new.all_methods()}
        assert old_fp[qualname] != new_fp[qualname]
        unchanged = set(old_fp) - {qualname}
        assert all(old_fp[name] == new_fp[name] for name in unchanged)
