"""Hierarchy-ordered object numbering: unit and differential tests.

Covers the on/off registry (``REPRO_NUMBERING`` / ``@num``/``@nonum``
suffixes), the pre-order slot assignment itself (every class's subtype
set must occupy one contiguous id range — the invariant that makes
range masks possible), :class:`repro.pta.bitset.RangeFilterMasks`
against the scatter oracle, pickle hygiene for the process-pool path,
and the tentpole invariant: the numbering only relabels ids, so every
observable result is identical with it on or off, on both points-to
backends.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings

from repro.analysis import run_analysis
from repro.analysis.config import parse_config
from repro.analysis.pipeline import next_rung
from repro.frontend import parse_program
from repro.pta.bitset import (
    BACKEND_BITSET,
    BACKEND_SET,
    ClassFilterMasks,
    RangeFilterMasks,
    iter_bits,
)
from repro.pta.context import selector_for
from repro.pta.heapmodel import AllocationSiteAbstraction
from repro.pta.numbering import (
    HierarchyNumbering,
    resolve_numbering,
    set_default_numbering,
)
from repro.pta.solver import Solver
from repro.workloads import TINY, generate, load_profile

from tests.program_strategies import ir_programs
from tests.test_scc_differential import assert_same_results

#: A diamond-free but branchy hierarchy with one class (``Leaf``) that
#: is never allocated and one (``Dead``) allocated only in dead code.
HIERARCHY_SOURCE = """
class A { field f: Object; }
class B extends A { }
class C extends A { }
class D extends B { }
class Leaf extends C { }
class Dead { method never() { d = new Dead(); return d; } }
main {
  a = new A();
  b = new B();
  c = new C();
  d = new D();
  o = new Object();
  b2 = new B();
  a.f = o;
}
"""


@pytest.fixture(scope="module")
def hierarchy_program():
    return parse_program(HIERARCHY_SOURCE)


# ----------------------------------------------------------------------
# The on/off registry
# ----------------------------------------------------------------------
class TestResolveNumbering:
    def test_explicit_values(self):
        assert resolve_numbering(True) is True
        assert resolve_numbering(False) is False
        assert resolve_numbering("on") is True
        assert resolve_numbering("off") is False
        assert resolve_numbering("nonum") is False

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMBERING", "off")
        assert resolve_numbering() is False
        monkeypatch.setenv("REPRO_NUMBERING", "on")
        assert resolve_numbering() is True
        monkeypatch.delenv("REPRO_NUMBERING")
        assert resolve_numbering() is True  # process default

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMBERING", "off")
        assert resolve_numbering(True) is True

    def test_unknown_value_raises(self):
        with pytest.raises(ValueError):
            resolve_numbering("sometimes")

    def test_set_default(self):
        previous = set_default_numbering(False)
        try:
            assert resolve_numbering() is False
        finally:
            set_default_numbering(previous)

    def test_config_suffix_parsing(self):
        assert parse_config("2obj").numbering is None
        assert parse_config("2obj@num").numbering is True
        assert parse_config("M-2obj@nonum").numbering is False
        combined = parse_config("2obj@set@noscc@nonum")
        assert combined.pts_backend == BACKEND_SET
        assert combined.scc is False
        assert combined.numbering is False
        with pytest.raises(ValueError):
            parse_config("2obj@num@nonum")

    def test_next_rung_carries_numbering_suffix(self):
        assert next_rung("M-3obj@nonum", "main") == "M-2obj@nonum"
        assert next_rung("M-2obj@set@nonum", "pre") == "2obj@set@nonum"

    def test_suffix_reaches_solver(self, figure1_program, monkeypatch):
        monkeypatch.delenv("REPRO_NUMBERING", raising=False)
        assert run_analysis(figure1_program, "2obj@nonum").result.stats()[
            "numbering"] is False
        assert run_analysis(figure1_program, "2obj").result.stats()[
            "numbering"] is True

    def test_env_reaches_solver(self, figure1_program, monkeypatch):
        monkeypatch.setenv("REPRO_NUMBERING", "off")
        assert Solver(figure1_program).solve().stats()["numbering"] is False


# ----------------------------------------------------------------------
# The pre-order slot assignment
# ----------------------------------------------------------------------
def assert_contiguous_ranges(program, numbering):
    """The invariant that makes range masks possible: for every class
    ``C``, the reserved slots of keys whose class is a (reflexive,
    transitive) subtype of ``C`` are exactly ``range(lo, hi)``."""
    hierarchy = program.hierarchy
    for name, (lo, hi) in numbering.class_ranges.items():
        member_slots = {
            slot for key, slot in numbering.slots.items()
            if hierarchy.is_subtype_names(numbering.key_class[key], name)
        }
        assert member_slots == set(range(lo, hi)), name


class TestHierarchyNumbering:
    @pytest.fixture(scope="class")
    def numbering(self, hierarchy_program):
        return HierarchyNumbering.build(hierarchy_program,
                                        AllocationSiteAbstraction())

    def test_slots_are_dense_and_invertible(self, hierarchy_program, numbering):
        assert numbering.count == len(numbering.slot_keys)
        assert sorted(numbering.slots.values()) == list(range(numbering.count))
        for key, slot in numbering.slots.items():
            assert numbering.slot_keys[slot] == key
        # every distinct site key of the program got a slot (all classes
        # here are declared), including the dead-code allocation
        sites = hierarchy_program.alloc_sites()
        keys = {AllocationSiteAbstraction().site_key(s, st.class_name)
                for s, st in sites.items()}
        assert set(numbering.slots) == keys

    def test_subtype_ranges_contiguous(self, hierarchy_program, numbering):
        assert_contiguous_ranges(hierarchy_program, numbering)

    def test_range_shapes(self, numbering):
        ranges = numbering.class_ranges
        # Object's range spans every slot; a never-allocated class gets
        # an empty range (lo == hi) at the right position
        assert ranges["Object"] == (0, numbering.count)
        lo, hi = ranges["Leaf"]
        assert lo == hi
        # A's range covers its own two B slots, C, D (B's subtree nests
        # inside A's)
        a_lo, a_hi = ranges["A"]
        b_lo, b_hi = ranges["B"]
        assert a_lo <= b_lo <= b_hi <= a_hi
        assert a_hi - a_lo == 5  # A, B, B, C, D

    def test_stats_shape(self, numbering):
        stats = numbering.stats()
        assert stats["numbered_slots"] == numbering.count
        assert stats["ranged_classes"] == len(numbering.class_ranges)
        assert 0 < stats["numbered_classes"] <= stats["ranged_classes"]

    @given(program=ir_programs())
    @settings(max_examples=30, deadline=None)
    def test_ranges_contiguous_on_random_programs(self, program):
        numbering = HierarchyNumbering.build(program,
                                             AllocationSiteAbstraction())
        assert_contiguous_ranges(program, numbering)


# ----------------------------------------------------------------------
# Range masks vs the scatter oracle
# ----------------------------------------------------------------------
class TestRangeFilterMasks:
    def test_matches_scatter_oracle_after_solve(self, hierarchy_program):
        solver = Solver(hierarchy_program, numbering=True)
        solver.solve()
        masks = solver._filter_masks
        assert isinstance(masks, RangeFilterMasks)
        oracle = ClassFilterMasks(solver._object_class,
                                  solver._is_subtype_name)
        for cls in hierarchy_program.classes:
            assert masks.mask_for(cls) == oracle.mask_for(cls), cls
        assert masks.mask_for("Ghost") == oracle.mask_for("Ghost") == 0

    def test_range_builds_need_no_subtype_tests(self, hierarchy_program):
        """With every object numbered (no overflow ids), the range path
        answers every mask with zero subtype tests."""
        numbering = HierarchyNumbering.build(hierarchy_program,
                                             AllocationSiteAbstraction())
        classes = [numbering.key_class[k] for k in numbering.slot_keys]
        masks = RangeFilterMasks(numbering.class_ranges, classes,
                                 hierarchy_program.hierarchy.is_subtype_names,
                                 start=numbering.count)
        for cls in numbering.class_ranges:
            masks.mask_for(cls)
        assert masks.range_builds == len(numbering.class_ranges)
        assert masks.subtype_tests == 0
        assert masks.extensions == 0
        assert masks.stats()["mask_range_builds"] == masks.range_builds

    def test_overflow_objects_extend_by_scatter(self, hierarchy_program):
        """Ids above the numbered block (here: interned by hand) are
        covered by the watermark scatter, exactly like the legacy
        masks."""
        numbering = HierarchyNumbering.build(hierarchy_program,
                                             AllocationSiteAbstraction())
        hierarchy = hierarchy_program.hierarchy
        classes = [numbering.key_class[k] for k in numbering.slot_keys]
        masks = RangeFilterMasks(numbering.class_ranges, classes,
                                 hierarchy.is_subtype_names,
                                 start=numbering.count)
        before = masks.mask_for("A")
        classes.extend(["D", "Object"])  # mid-solve overflow interning
        after = masks.mask_for("A")
        assert after == before | (1 << numbering.count)  # D <: A, Object not
        assert masks.subtype_tests == 2
        oracle = ClassFilterMasks(classes, hierarchy.is_subtype_names)
        for cls in hierarchy_program.classes:
            assert masks.mask_for(cls) == oracle.mask_for(cls), cls

    def test_mask_bits_name_live_subtypes(self, hierarchy_program):
        """Decoded mask bits of a post-solve range mask are exactly the
        interned objects whose class is a subtype of the filter."""
        solver = Solver(hierarchy_program, numbering=True)
        result = solver.solve()
        masks = solver._filter_masks
        for cls in ("A", "B", "Object"):
            named = {o for o in result.objects()
                     if result.is_subtype(result.object_class(o), cls)}
            decoded = set(iter_bits(masks.mask_for(cls)))
            # reserved-but-unreached slots may set extra bits; every
            # *live* object must be classified exactly
            assert decoded & set(result.objects()) == named


# ----------------------------------------------------------------------
# The tentpole invariant: numbering only relabels ids
# ----------------------------------------------------------------------
def solve_numbering_four_way(program, config="ci"):
    """Solve under {numbering on, off} x {bitset, set}; results keyed
    by ``(numbering, backend)``."""
    results = {}
    for numbering in (True, False):
        for backend in (BACKEND_BITSET, BACKEND_SET):
            solver = Solver(program, selector_for(config),
                            pts_backend=backend, numbering=numbering)
            results[(numbering, backend)] = solver.solve()
    return results


def assert_numbering_four_way(program, results):
    on_bits = results[(True, BACKEND_BITSET)]
    off_bits = results[(False, BACKEND_BITSET)]
    on_sets = results[(True, BACKEND_SET)]
    off_sets = results[(False, BACKEND_SET)]
    assert on_bits.stats()["numbering"] is True
    assert off_bits.stats()["numbering"] is False
    assert_same_results(program, on_bits, off_bits)
    assert_same_results(program, on_bits, on_sets)
    assert_same_results(program, on_bits, off_sets)


class TestNumberingDifferential:
    @pytest.fixture(scope="class")
    def programs(self, figure1_program, hierarchy_program):
        return {
            "figure1": figure1_program,
            "hierarchy": hierarchy_program,
            "tiny": generate(TINY),
            "luindex": load_profile("luindex", 0.25),
        }

    @pytest.mark.parametrize("config", ["ci", "2cs", "2obj", "2type"])
    @pytest.mark.parametrize("name",
                             ["figure1", "hierarchy", "tiny", "luindex"])
    def test_four_way_matches(self, programs, name, config):
        program = programs[name]
        results = solve_numbering_four_way(program, config)
        assert_numbering_four_way(program, results)

    @pytest.mark.parametrize("config", ["M-2obj", "T-2type"])
    def test_pipeline_four_way(self, programs, config):
        """Full pipeline (pre-analysis + merge + main) across the
        numbering axis: the MAHJONG merge decisions and the main solve
        must both be numbering-blind."""
        program = programs["hierarchy"]
        on = run_analysis(program, f"{config}@num").result
        off = run_analysis(program, f"{config}@nonum").result
        assert_same_results(program, on, off)

    def test_unreached_slots_not_observable(self, programs):
        """The dead-code allocation reserves a slot but never
        materializes: object counts and iteration agree with the
        unnumbered run, and live ids may have gaps."""
        program = programs["hierarchy"]
        on = Solver(program, numbering=True)
        on_result = on.solve()
        off_result = Solver(program, numbering=False).solve()
        assert on_result.object_count == off_result.object_count
        live = list(on_result.objects())
        assert len(live) == on_result.object_count
        assert live == sorted(live)
        # the Dead slot is reserved in the numbering but not live
        assert on._numbering.count == on_result.object_count + 1


class TestHypothesisDifferential:
    @given(program=ir_programs())
    @settings(max_examples=25, deadline=None)
    def test_random_programs_four_way(self, program):
        results = solve_numbering_four_way(program, "ci")
        assert_numbering_four_way(program, results)

    @given(program=ir_programs())
    @settings(max_examples=10, deadline=None)
    def test_random_programs_context_sensitive(self, program):
        results = solve_numbering_four_way(program, "2obj")
        assert_numbering_four_way(program, results)


# ----------------------------------------------------------------------
# Pickle hygiene (the `repro batch --jobs N` process-pool path)
# ----------------------------------------------------------------------
class TestPickleRoundTrips:
    def test_hierarchy_numbering_round_trip(self, hierarchy_program):
        numbering = HierarchyNumbering.build(hierarchy_program,
                                             AllocationSiteAbstraction())
        clone = pickle.loads(pickle.dumps(numbering))
        assert clone.slots == numbering.slots
        assert clone.slot_keys == numbering.slot_keys
        assert clone.class_ranges == numbering.class_ranges
        assert clone.count == numbering.count

    def test_class_filter_masks_round_trip(self, hierarchy_program):
        solver = Solver(hierarchy_program, numbering=False)
        solver.solve()
        masks = solver._filter_masks
        assert isinstance(masks, ClassFilterMasks)
        warm = {c: masks.mask_for(c) for c in hierarchy_program.classes}
        clone = pickle.loads(pickle.dumps(masks))
        # derived caches dropped, masks rebuild lazily and identically
        assert len(clone) == 0
        assert clone.extensions == 0
        for cls, mask in warm.items():
            assert clone.mask_for(cls) == mask

    def test_range_filter_masks_round_trip(self, hierarchy_program):
        solver = Solver(hierarchy_program, numbering=True)
        solver.solve()
        masks = solver._filter_masks
        assert isinstance(masks, RangeFilterMasks)
        warm = {c: masks.mask_for(c) for c in hierarchy_program.classes}
        clone = pickle.loads(pickle.dumps(masks))
        assert len(clone) == 0
        assert clone.range_builds == 0
        for cls, mask in warm.items():
            assert clone.mask_for(cls) == mask
        assert clone.range_builds == len(warm)
