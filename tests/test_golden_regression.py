"""Golden regression tests.

Workloads are seeded and every algorithm is deterministic, so exact
values are stable; these tests pin them to catch silent behavioural
drift (a changed merge quotient, a changed metric) that the
property-based suite might tolerate.

If a deliberate algorithm change shifts these values, update the
constants *after* confirming the shift is intended.
"""

from repro.analysis import run_analysis, run_pre_analysis
from repro.workloads import generate, profile_spec


def test_tiny_profile_program_shape(tiny_program):
    assert tiny_program.stats() == {
        "classes": 23,
        "methods": 33,
        "statements": 210,
        "alloc_sites": 55,
        "call_sites": 67,
    }


def test_tiny_profile_merge_quotient(tiny_program):
    pre = run_pre_analysis(tiny_program)
    assert pre.merge.object_count_before == 55
    assert pre.merge.object_count_after == 20
    histogram = pre.merge.class_size_histogram()
    assert sum(size * count for size, count in histogram.items()) == 55
    # the dominant class: all string builders (and peers) merged
    assert max(histogram) >= 5


def test_tiny_profile_ci_metrics(tiny_program):
    metrics = run_analysis(tiny_program, "ci").metrics()
    assert metrics["call_graph_edges"] == 81
    assert metrics["reachable_methods"] == 30
    assert metrics["abstract_objects"] == 55


def test_tiny_profile_m2obj_matches_2obj(tiny_program):
    base = run_analysis(tiny_program, "2obj").metrics()
    merged = run_analysis(tiny_program, "M-2obj").metrics()
    pinned = {
        "call_graph_edges": base["call_graph_edges"],
        "poly_call_sites": base["poly_call_sites"],
        "may_fail_casts": base["may_fail_casts"],
    }
    assert {k: merged[k] for k in pinned} == pinned
    # 2obj is strictly more precise than ci on this workload
    ci = run_analysis(tiny_program, "ci").metrics()
    assert base["may_fail_casts"] < ci["may_fail_casts"]


def test_luindex_small_scale_is_stable():
    program = generate(profile_spec("luindex", scale=0.2))
    pre = run_pre_analysis(program)
    again = run_pre_analysis(generate(profile_spec("luindex", scale=0.2)))
    assert pre.merge.mom == again.merge.mom
    assert pre.fpg.stats() == again.fpg.stats()
