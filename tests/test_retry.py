"""The shared transient-retry engine (:mod:`repro.retry`).

The batch runner's jittered backoff extracted for reuse by the serving
layer; these tests pin the policy math and the retry-loop discipline
(plan-but-never-sleep on the final give-up) that the batch regression
tests observe indirectly through recorded ``backoff_delays``.
"""

import random

import pytest

from repro.retry import (
    RetriesExhausted,
    RetryPolicy,
    RetryState,
    call_with_retry,
)


class _Flaky(Exception):
    pass


class _Fatal(Exception):
    pass


def _fails(times, exc_type=_Flaky):
    """A callable that raises ``times`` times, then returns 'done'."""
    remaining = {"n": times}

    def fn():
        if remaining["n"] > 0:
            remaining["n"] -= 1
            raise exc_type(f"boom {remaining['n']}")
        return "done"

    return fn


class TestRetryPolicy:
    def test_delay_is_exponential_with_jitter(self):
        policy = RetryPolicy(max_retries=5, backoff_seconds=0.1)
        rng = random.Random(7)
        jitters = [random.Random(7).random() for _ in range(1)]
        d0 = policy.delay(0, rng)
        # base * 2^0 * (0.5 + u) with u in [0, 1)
        assert 0.05 <= d0 < 0.15
        d1 = policy.delay(1, rng)
        assert 0.1 <= d1 < 0.3
        d2 = policy.delay(2, rng)
        assert 0.2 <= d2 < 0.6
        assert jitters  # rng consumed one uniform per delay

    def test_delay_deterministic_under_seed(self):
        policy = RetryPolicy(max_retries=2, backoff_seconds=0.05)
        a = [policy.delay(i, random.Random(3)) for i in range(3)]
        b = [policy.delay(i, random.Random(3)) for i in range(3)]
        assert a == b


class TestCallWithRetry:
    def test_success_first_try_sleeps_never(self):
        slept = []
        out = call_with_retry(_fails(0), policy=RetryPolicy(),
                              rng=random.Random(0), retryable=_Flaky,
                              sleeper=slept.append)
        assert out == "done"
        assert slept == []

    def test_retries_then_succeeds(self):
        slept = []
        state = RetryState()
        out = call_with_retry(_fails(2), policy=RetryPolicy(max_retries=3),
                              rng=random.Random(0), retryable=_Flaky,
                              sleeper=slept.append, state=state)
        assert out == "done"
        assert state.retries == 2
        assert slept == state.delays
        assert len(state.delays) == 2

    def test_exhaustion_plans_final_delay_but_never_sleeps_it(self):
        """The batch runner's signature discipline: the give-up attempt
        records one more planned delay than it sleeps."""
        slept = []
        policy = RetryPolicy(max_retries=2, backoff_seconds=10.0)
        with pytest.raises(RetriesExhausted) as info:
            call_with_retry(_fails(99), policy=policy,
                            rng=random.Random(5), retryable=_Flaky,
                            sleeper=slept.append)
        exc = info.value
        assert exc.retries == 2
        assert len(exc.delays) == 3
        assert slept == exc.delays[:2]
        assert isinstance(exc.last, _Flaky)
        assert "transient fault persisted after 2 retries" in str(exc)

    def test_non_retryable_propagates_untouched(self):
        slept = []
        with pytest.raises(_Fatal):
            call_with_retry(_fails(1, _Fatal), policy=RetryPolicy(),
                            rng=random.Random(0), retryable=_Flaky,
                            sleeper=slept.append)
        assert slept == []

    def test_on_backoff_sees_retry_number_and_delay(self):
        seen = []
        call_with_retry(_fails(2), policy=RetryPolicy(max_retries=3),
                        rng=random.Random(1), retryable=_Flaky,
                        sleeper=lambda _d: None,
                        on_backoff=lambda retry, delay: seen.append(
                            (retry, delay)))
        assert [retry for retry, _ in seen] == [1, 2]
        assert all(delay > 0 for _, delay in seen)

    def test_zero_retries_policy_fails_immediately(self):
        slept = []
        with pytest.raises(RetriesExhausted) as info:
            call_with_retry(_fails(1), policy=RetryPolicy(max_retries=0),
                            rng=random.Random(0), retryable=_Flaky,
                            sleeper=slept.append)
        assert info.value.retries == 0
        assert len(info.value.delays) == 1  # planned, never slept
        assert slept == []

    def test_deterministic_delays_under_seed(self):
        def run():
            state = RetryState()
            with pytest.raises(RetriesExhausted):
                call_with_retry(_fails(99),
                                policy=RetryPolicy(max_retries=3,
                                                   backoff_seconds=0.01),
                                rng=random.Random(42), retryable=_Flaky,
                                sleeper=lambda _d: None, state=state)
            return state.delays

        assert run() == run()

    def test_state_records_match_exception_records(self):
        state = RetryState()
        with pytest.raises(RetriesExhausted) as info:
            call_with_retry(_fails(99), policy=RetryPolicy(max_retries=1),
                            rng=random.Random(9), retryable=_Flaky,
                            sleeper=lambda _d: None, state=state)
        assert state.retries == info.value.retries
        assert state.delays == info.value.delays
