"""Hypothesis strategies for the core property tests.

The central generator, :func:`field_points_to_graphs`, draws arbitrary
(possibly cyclic) field points-to graphs over a small pool of types and
field names — the exact input domain of the automata/merging layer.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import strategies as st

from repro.core.fpg import FieldPointsToGraph

TYPE_POOL = ["T", "U", "V", "W", "X"]
FIELD_POOL = ["f", "g", "h"]


@st.composite
def field_points_to_graphs(draw, min_objects: int = 1,
                           max_objects: int = 8,
                           allow_null_edges: bool = True) -> FieldPointsToGraph:
    """An arbitrary FPG: objects 1..n with random types, random labeled
    edges (cycles allowed), optionally null-field edges."""
    n = draw(st.integers(min_objects, max_objects))
    fpg = FieldPointsToGraph()
    types = [
        draw(st.sampled_from(TYPE_POOL), label=f"type_{obj}")
        for obj in range(1, n + 1)
    ]
    for obj, type_name in zip(range(1, n + 1), types):
        fpg.add_object(obj, type_name)
    edge_count = draw(st.integers(0, 2 * n))
    for _ in range(edge_count):
        source = draw(st.integers(1, n))
        field = draw(st.sampled_from(FIELD_POOL))
        target = draw(st.integers(0 if allow_null_edges else 1, n))
        fpg.add_edge(source, field, target)
    return fpg


@st.composite
def dag_field_points_to_graphs(draw, max_objects: int = 7) -> FieldPointsToGraph:
    """An acyclic FPG (edges only point to strictly larger ids), for
    tests that compare against the bounded path-enumeration oracle."""
    n = draw(st.integers(2, max_objects))
    fpg = FieldPointsToGraph()
    for obj in range(1, n + 1):
        fpg.add_object(obj, draw(st.sampled_from(TYPE_POOL),
                                 label=f"type_{obj}"))
    edge_count = draw(st.integers(0, 2 * n))
    for _ in range(edge_count):
        source = draw(st.integers(1, n - 1))
        field = draw(st.sampled_from(FIELD_POOL))
        target = draw(st.integers(source + 1, n))
        fpg.add_edge(source, field, target)
    return fpg


def object_pairs(fpg: FieldPointsToGraph) -> List[Tuple[int, int]]:
    """All unordered same-type object pairs of an FPG."""
    objs = sorted(fpg.objects())
    return [
        (a, b)
        for i, a in enumerate(objs)
        for b in objs[i + 1:]
        if fpg.type_of(a) == fpg.type_of(b)
    ]
