"""Tests for exceptional flow and the escaping-exception client."""

import pytest

from repro.analysis import run_analysis, run_pre_analysis
from repro.clients import analyze_exceptions
from repro.frontend import parse_program
from repro.pta import selector_for, solve

SOURCE = """
class Error { }
class IoError extends Error { }
class ParseError extends Error { }
class Reader {
  method read() {
    e = new IoError();
    throw e;
  }
}
class Parser {
  method parse(r) {
    data = r.read();
    p = new ParseError();
    throw p;
    return data;
  }
  method safeParse(r) {
    data = this.parse(r);
    caught = catch (IoError);
    return data;
  }
}
main {
  reader = new Reader();
  parser = new Parser();
  out = parser.safeParse(reader);
}
"""


def result(selector="ci"):
    return solve(parse_program(SOURCE), selector_for(selector))


class TestExceptionFlow:
    def test_throw_reaches_own_method_exit(self):
        r = result()
        classes = {
            r.object_class(o) for o in r.exception_points_to("Reader.read")
        }
        assert classes == {"IoError"}

    def test_exceptions_propagate_through_calls(self):
        r = result()
        classes = {
            r.object_class(o) for o in r.exception_points_to("Parser.parse")
        }
        assert classes == {"IoError", "ParseError"}

    def test_catch_binds_matching_subtypes_only(self):
        r = result()
        caught = {
            d.class_name
            for d in r.var_points_to("Parser.safeParse", "caught")
        }
        assert caught == {"IoError"}

    def test_methods_without_throws_have_empty_exit(self):
        src = "class A { method quiet() { return this; } } main { a = new A(); a.quiet(); }"
        r = solve(parse_program(src))
        assert r.exception_points_to("A.quiet") == set()


class TestEscapeClient:
    def test_escaping_classes(self):
        report = analyze_exceptions(result())
        # flow-insensitive catching does not stop propagation, so both
        # escape; the client reports class-level answers
        assert report.escaping_classes == frozenset({"IoError", "ParseError"})
        assert report.escaping_class_count == 2

    def test_per_method_summaries(self):
        report = analyze_exceptions(result())
        assert report.may_throw("Reader.read") == frozenset({"IoError"})
        assert "quiet" not in report.per_method

    def test_program_without_exceptions(self, tiny_program):
        report = analyze_exceptions(solve(tiny_program))
        assert report.escaping_classes == frozenset()
        assert report.per_method == {}


class TestTypeDependence:
    """Escaping exceptions are a type-dependent client: MAHJONG must
    preserve the answer."""

    MERGEABLE = """
    class Error { }
    class Thrower {
      field cause: Error;
      method boom() {
        e = new Error();
        this.cause = e;
        throw e;
      }
    }
    main {
      t1 = new Thrower();
      t2 = new Thrower();
      t1.boom();
      t2.boom();
    }
    """

    def test_mahjong_preserves_escaping_classes(self):
        program = parse_program(self.MERGEABLE)
        pre = run_pre_analysis(program)
        # the two Thrower sites are type-consistent and merge
        thrower_sites = [
            site for site, stmt in program.alloc_sites().items()
            if stmt.class_name == "Thrower"
        ]
        assert len({pre.merge.mom[s] for s in thrower_sites}) == 1
        base = analyze_exceptions(run_analysis(program, "2obj").result)
        merged = analyze_exceptions(
            run_analysis(program, "M-2obj", pre=pre).result
        )
        assert base.escaping_classes == merged.escaping_classes

    def test_context_sensitivity_and_exceptions_compose(self):
        program = parse_program(SOURCE)
        for config in ("2cs", "2obj", "2type"):
            report = analyze_exceptions(
                run_analysis(program, config).result
            )
            assert report.escaping_classes == frozenset(
                {"IoError", "ParseError"}
            )


class TestRoundTrip:
    def test_throw_catch_print_parse(self):
        from repro.ir.printer import print_program

        program = parse_program(SOURCE)
        reparsed = parse_program(print_program(program))
        assert reparsed.stats() == program.stats()
        r = solve(reparsed)
        assert analyze_exceptions(r).escaping_class_count == 2
