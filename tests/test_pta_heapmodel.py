"""Unit tests for the three heap abstractions."""

from repro.frontend import parse_program
from repro.pta import (
    AllocationSiteAbstraction,
    AllocationTypeAbstraction,
    MahjongAbstraction,
    solve,
)

SOURCE = """
class A { field f: Object; }
class B { }
main {
  a1 = new A();
  a2 = new A();
  b = new B();
}
"""


def program():
    return parse_program(SOURCE)


class TestAllocationSite:
    def test_one_key_per_site(self):
        model = AllocationSiteAbstraction()
        assert model.site_key(1, "A") == 1
        assert model.site_key(2, "A") == 2

    def test_nothing_is_merged(self):
        model = AllocationSiteAbstraction()
        assert not model.is_merged(1, "A")

    def test_containing_class(self):
        p = program()
        model = AllocationSiteAbstraction()
        assert model.containing_class(1, "A", p) == "<Main>"


class TestAllocationType:
    def test_same_type_sites_share_key(self):
        model = AllocationTypeAbstraction(program())
        assert model.site_key(1, "A") == model.site_key(2, "A")
        assert model.site_key(1, "A") != model.site_key(3, "B")

    def test_merged_only_for_multi_site_classes(self):
        model = AllocationTypeAbstraction(program())
        assert model.is_merged(1, "A")
        assert not model.is_merged(3, "B")

    def test_object_count_bound_is_type_count(self):
        model = AllocationTypeAbstraction(program())
        assert model.object_count_upper_bound() == 2

    def test_solver_object_count_equals_types(self):
        r = solve(program(), heap_model=AllocationTypeAbstraction(program()))
        assert r.object_count == 2


class TestMahjong:
    def test_representative_lookup(self):
        model = MahjongAbstraction({1: 1, 2: 1, 3: 3})
        assert model.representative(1) == 1
        assert model.representative(2) == 1
        assert model.representative(3) == 3

    def test_unknown_sites_are_their_own_representative(self):
        model = MahjongAbstraction({1: 1})
        assert model.representative(99) == 99
        assert not model.is_merged(99, "A")

    def test_is_merged_iff_class_bigger_than_one(self):
        model = MahjongAbstraction({1: 1, 2: 1, 3: 3})
        assert model.is_merged(1, "A")
        assert model.is_merged(2, "A")
        assert not model.is_merged(3, "A")

    def test_class_size(self):
        model = MahjongAbstraction({1: 1, 2: 1, 3: 1, 4: 4})
        assert model.class_size(2) == 3
        assert model.class_size(4) == 1

    def test_containing_class_uses_representative(self):
        src = """
        class H { static method mk() { x = new A(); return x; } }
        class A { }
        main { a = H::mk(); b = new A(); }
        """
        p = parse_program(src)
        # site 1 is inside H.mk, site 2 inside <Main>
        model = MahjongAbstraction({1: 1, 2: 1})
        assert model.containing_class(2, "A", p) == "H"

    def test_solver_uses_merged_key(self):
        p = program()
        model = MahjongAbstraction({1: 1, 2: 1, 3: 3})
        r = solve(p, heap_model=model)
        assert r.object_count == 2
        # the merged object records both provenance sites
        merged_objs = [o for o in r.objects() if r.object_sites(o) == {1, 2}]
        assert len(merged_objs) == 1
