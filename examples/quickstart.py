"""Quickstart: MAHJONG on the paper's Figure 1 program.

Parses the motivating example, runs the pre-analysis, shows which
allocation sites MAHJONG merges, and compares the three heap
abstractions on the three type-dependent clients.

Run: ``python examples/quickstart.py``
"""

from repro import parse_program, run_analysis
from repro.analysis import run_pre_analysis
from repro.clients import check_casts, devirtualize

FIGURE1 = """
class A { field f: A; method foo() { return this; } }
class B extends A { method foo() { return this; } }
class C extends A { method foo() { return this; } }

main {
  x = new A();            // o1
  y = new A();            // o2
  z = new A();            // o3
  xf = new B(); x.f = xf; // o4
  yf = new C(); y.f = yf; // o5
  zf = new C(); z.f = zf; // o6
  a = z.f;
  a.foo();                // devirtualizable?
  c = (C) a;              // may this cast fail?
}
"""


def main() -> None:
    program = parse_program(FIGURE1)
    print(f"parsed Figure 1: {program.stats()}\n")

    # Phase 1-3: pre-analysis, field points-to graph, MAHJONG merging.
    pre = run_pre_analysis(program)
    print("MAHJONG equivalence classes (allocation sites):")
    for cls in sorted(map(sorted, pre.merge.classes)):
        types = {pre.fpg.type_of(o) for o in cls}
        print(f"  sites {cls} : {', '.join(sorted(types))}")
    print(f"objects: {pre.merge.object_count_before} -> "
          f"{pre.merge.object_count_after}\n")

    # Phase 4: the main analysis, under each heap abstraction.
    print(f"{'analysis':<10} {'a.foo() devirtualized?':<24} "
          f"{'cast (C) a safe?':<18} abstract objects")
    for config in ("ci", "M-ci", "T-ci"):
        run = run_analysis(program, config,
                           pre=pre if config.startswith("M-") else None)
        devirt = devirtualize(run.result)
        casts = check_casts(run.result)
        mono = devirt.poly_call_site_count == 0
        safe = casts.may_fail_count == 0
        print(f"{config:<10} {str(mono):<24} {str(safe):<18} "
              f"{run.result.object_count}")

    print("\nThe paper's point: MAHJONG (M-) keeps the allocation-site "
          "precision for type-dependent\nclients while the naive "
          "allocation-type abstraction (T-) loses it.")


if __name__ == "__main__":
    main()
