"""Accelerating 3-object-sensitive analysis with MAHJONG.

The paper's headline result: on programs where 3obj is slow or
unscalable, M-3obj (same analysis over the MAHJONG heap) runs orders of
magnitude faster at the same client precision.  This example measures
it live on the synthetic ``pmd`` workload (the program the paper's
Section 2.1 uses for the same demonstration).

Run: ``python examples/accelerate_object_sensitivity.py [scale]``
"""

import sys

from repro.analysis import run_analysis, run_pre_analysis
from repro.workloads import load_profile


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    program = load_profile("pmd", scale)
    print(f"workload: synthetic pmd at scale {scale}: {program.stats()}\n")

    pre = run_pre_analysis(program)
    print(f"pre-analysis: ci {pre.ci_seconds:.2f}s, "
          f"FPG {pre.fpg_seconds * 1000:.0f}ms, "
          f"MAHJONG {pre.mahjong_seconds * 1000:.0f}ms "
          f"({pre.merge.object_count_before} -> "
          f"{pre.merge.object_count_after} objects)\n")

    rows = []
    for config in ("3obj", "M-3obj", "T-3obj"):
        run = run_analysis(program, config, timeout_seconds=300,
                           pre=pre if config.startswith("M-") else None)
        metrics = run.metrics()
        rows.append((config, metrics))
        print(f"{config:<8} {metrics['main_seconds']:>8.2f}s   "
              f"cg-edges={metrics['call_graph_edges']:<6} "
              f"poly={metrics['poly_call_sites']:<4} "
              f"may-fail casts={metrics['may_fail_casts']:<4} "
              f"contexts={metrics['method_contexts']}")

    base = dict(rows)["3obj"]
    mahjong = dict(rows)["M-3obj"]
    speedup = base["main_seconds"] / max(mahjong["main_seconds"], 1e-4)
    same = all(
        base[m] == mahjong[m]
        for m in ("call_graph_edges", "poly_call_sites", "may_fail_casts")
    )
    print(f"\nM-3obj speedup over 3obj: {speedup:.0f}x "
          f"(client precision identical: {same})")


if __name__ == "__main__":
    main()
