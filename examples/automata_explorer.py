"""Exploring the automata behind type-consistency (Figure 2 / Figure 4).

Reconstructs the paper's Figure 2 field points-to graph, builds the
per-object sequential NFAs and DFAs, prints their structure, and walks
the Hopcroft–Karp equivalence check that proves o1 ≡ o2.

Run: ``python examples/automata_explorer.py``
"""

from repro.core import (
    FieldPointsToGraph,
    SharedAutomata,
    build_nfa,
    dfa_equivalent,
    nfa_to_dfa,
    shared_equivalent,
)
from repro.core.pathcheck import reached_types


def figure2() -> FieldPointsToGraph:
    fpg = FieldPointsToGraph()
    for obj, type_name in [(1, "T"), (3, "U"), (5, "X"), (7, "Y"), (9, "Y"),
                           (11, "Y"), (2, "T"), (4, "U"), (6, "X"), (8, "Y")]:
        fpg.add_object(obj, type_name)
    for source, field, target in [
        (1, "f", 3), (1, "g", 5), (3, "h", 7), (3, "h", 9), (5, "k", 11),
        (2, "f", 4), (2, "g", 6), (4, "h", 8), (6, "k", 8),
    ]:
        fpg.add_edge(source, field, target)
    return fpg


def main() -> None:
    fpg = figure2()
    print("Figure 2 field points-to graph:")
    for source, field, target in sorted(fpg.edges()):
        print(f"  o{source}:{fpg.type_of(source)} --{field}--> "
              f"o{target}:{fpg.type_of(target)}")

    for root in (1, 2):
        nfa = build_nfa(fpg, root)
        dfa = nfa_to_dfa(nfa)
        print(f"\nautomaton of o{root}: |Q|={nfa.size()} "
              f"sigma={sorted(nfa.sigma)} -> DFA with {dfa.size()} states")
        for word in ((), ("f",), ("f", "h"), ("g",), ("g", "k"), ("h",)):
            print(f"  beta({'.'.join(word) or 'epsilon':<6}) = "
                  f"{sorted(dfa.behavior(word))}")

    d1 = nfa_to_dfa(build_nfa(fpg, 1))
    d2 = nfa_to_dfa(build_nfa(fpg, 2))
    print(f"\nHopcroft-Karp: A_o1 equivalent to A_o2?  "
          f"{dfa_equivalent(d1, d2)}")

    shared = SharedAutomata(fpg)
    print(f"shared-automata check agrees: "
          f"{shared_equivalent(shared.dfa_root(1), shared.dfa_root(2))}")
    print(f"shared DFA states across both roots: {shared.state_count()} "
          f"(substructure is built once and reused)")

    print("\nDefinition 2.1 spot checks (types reached along strings):")
    for word in (("f",), ("f", "h"), ("g", "k")):
        t1 = sorted(reached_types(fpg, 1, word))
        t2 = sorted(reached_types(fpg, 2, word))
        print(f"  o1.{'.'.join(word):<4} -> {t1}   o2.{'.'.join(word):<4} -> {t2}")


if __name__ == "__main__":
    main()
