"""Heap partitioning of a container-heavy program.

Builds a program full of homogeneous containers (the shapes behind the
paper's Table 1 and Figure 9), runs the MAHJONG pre-analysis, and
prints the equivalence-class report plus the class-size histogram —
showing type-consistent containers collapsing while heterogeneous ones
stay apart.

Run: ``python examples/container_library.py``
"""

from repro.analysis import run_pre_analysis
from repro.core.heap_modeler import describe_classes
from repro.ir import ProgramBuilder


def build_container_program():
    """A hand-written container library exercised three ways."""
    b = ProgramBuilder()
    b.add_class("Item")
    with b.method("Item", "use") as m:
        m.ret("this")
    for name in ("Apple", "Pear", "Coin"):
        b.add_class(name, "Item")
        with b.method(name, "use") as m:
            m.ret("this")

    b.add_array_class("Slot", "Item")
    b.add_class("Crate")
    b.add_field("Crate", "slot", "Slot")
    with b.method("Crate", "take") as m:
        s = m.load("this", "slot")
        r = m.load(s, "elem")
        m.ret(r)

    b.add_class("Warehouse")
    # six crates of apples, four of pears, two mixed, one never filled
    plans = [("Apple", 6), ("Pear", 4)]
    drivers = []
    for fruit, crates in plans:
        for i in range(crates):
            method = f"stock{fruit}{i}"
            with b.method("Warehouse", method, static=True) as m:
                crate = m.new("Crate")
                slot = m.new("Slot")
                m.store(crate, "slot", slot)
                item = m.new(fruit)
                m.store(slot, "elem", item)
                got = m.invoke(crate, "take", target="got")
                fresh = m.cast(fruit, got)
                m.invoke(fresh, "use", target=m.fresh_var("u"))
                m.ret(crate)
            drivers.append(method)
    with b.method("Warehouse", "stockMixed", static=True) as m:
        crate = m.new("Crate")
        slot = m.new("Slot")
        m.store(crate, "slot", slot)
        apple = m.new("Apple")
        coin = m.new("Coin")
        m.store(slot, "elem", apple)
        m.store(slot, "elem", coin)
        m.ret(crate)
    drivers.append("stockMixed")
    with b.method("Warehouse", "stockEmpty", static=True) as m:
        crate = m.new("Crate")
        m.ret(crate)
    drivers.append("stockEmpty")

    with b.main() as m:
        for driver in drivers:
            m.static_invoke("Warehouse", driver, target=m.fresh_var("d"))
    return b.build()


def main() -> None:
    program = build_container_program()
    print(f"container program: {program.stats()}\n")
    pre = run_pre_analysis(program)
    merge = pre.merge

    print("equivalence classes (rank / type / size / what they store):")
    for report in describe_classes(pre.fpg, merge):
        print(f"  {report}")

    print("\nclass-size histogram (Figure 9's shape):")
    for size, count in sorted(merge.class_size_histogram().items()):
        print(f"  size {size:>3}: {'#' * count} ({count})")

    print(f"\nheap reduced {merge.object_count_before} -> "
          f"{merge.object_count_after} objects "
          f"({100 * merge.reduction:.0f}%)")
    print("note: the apple crates merged with each other but not with "
          "pear crates, the mixed\ncrate merged with nothing "
          "(Condition 2), and the empty crate's null slot kept it apart.")


if __name__ == "__main__":
    main()
