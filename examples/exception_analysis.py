"""Escaping-exception analysis — a fourth type-dependent client.

Builds a small service with workers that throw different failure kinds,
some handled and some not, then shows (a) which exception classes may
escape ``main`` under each analysis and (b) that the MAHJONG heap
abstraction preserves the answer while merging the throwers.

Run: ``python examples/exception_analysis.py``
"""

from repro import parse_program
from repro.analysis import run_analysis, run_pre_analysis
from repro.clients import analyze_exceptions

SERVICE = """
class Failure { }
class Timeout extends Failure { }
class BadInput extends Failure { }

class Fetcher {
  method fetch() {
    t = new Timeout();
    throw t;
  }
}
class Validator {
  method check(x) {
    b = new BadInput();
    throw b;
    return x;
  }
}
class Service {
  method handle(req) {
    f = new Fetcher();
    data = f.fetch();
    v = new Validator();
    ok = v.check(req);
    timeouts = catch (Timeout);   // handled here (soundly: may still escape)
    return ok;
  }
}

main {
  s1 = new Service();
  s2 = new Service();
  req = new Object();
  r1 = s1.handle(req);
  r2 = s2.handle(req);
}
"""


def main() -> None:
    program = parse_program(SERVICE)
    pre = run_pre_analysis(program)

    merged_services = [
        sorted(cls) for cls in pre.merge.classes if len(cls) > 1
    ]
    print(f"MAHJONG merged classes (sites): {merged_services}\n")

    print(f"{'analysis':<8} {'escaping exception classes':<40}")
    for config in ("ci", "2obj", "M-2obj"):
        run = run_analysis(program, config,
                           pre=pre if config.startswith("M-") else None)
        report = analyze_exceptions(run.result)
        print(f"{config:<8} {', '.join(sorted(report.escaping_classes)):<40}")

    report = analyze_exceptions(run_analysis(program, "M-2obj", pre=pre).result)
    print("\nper-method exceptional exits (M-2obj):")
    for method, classes in sorted(report.per_method.items()):
        print(f"  {method:<20} may throw {', '.join(sorted(classes))}")

    print("\nEscape analysis depends only on the *types* reaching the "
          "exceptional exits, so it is\na type-dependent client in the "
          "paper's sense — and MAHJONG preserves it exactly.")


if __name__ == "__main__":
    main()
