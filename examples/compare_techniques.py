"""Comparing the ways to make 3-object-sensitive analysis scale.

Runs, on one synthetic workload: the full 3obj baseline, MAHJONG
(M-3obj), the naive allocation-type heap (T-3obj), and introspective
method-selective refinement (I-3obj) — the related-work landscape the
paper positions itself in.  Then diffs each against the baseline to
show *where* the cheaper techniques lose precision.

Run: ``python examples/compare_techniques.py [profile] [scale]``
"""

import sys

from repro.analysis import run_analysis, run_introspective, run_pre_analysis
from repro.diffing import diff_results
from repro.workloads import load_profile


def main() -> None:
    profile = sys.argv[1] if len(sys.argv) > 1 else "pmd"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    program = load_profile(profile, scale)
    print(f"workload: {profile} at scale {scale}: {program.stats()}\n")

    pre = run_pre_analysis(program)
    baseline = run_analysis(program, "3obj", timeout_seconds=300)

    contenders = {
        "M-3obj": run_analysis(program, "M-3obj", timeout_seconds=300,
                               pre=pre),
        "T-3obj": run_analysis(program, "T-3obj", timeout_seconds=300),
        "I-3obj": run_introspective(program, "3obj", threshold=8, pre=pre),
    }

    base_metrics = baseline.metrics()
    print(f"{'technique':<8} {'time':>9}  cg-edges  poly  may-fail")
    print(f"{'3obj':<8} {base_metrics['main_seconds']:>8.2f}s  "
          f"{base_metrics['call_graph_edges']:>8}  "
          f"{base_metrics['poly_call_sites']:>4}  "
          f"{base_metrics['may_fail_casts']:>8}")
    for name, run in contenders.items():
        metrics = run.metrics()
        print(f"{name:<8} {metrics['main_seconds']:>8.2f}s  "
              f"{metrics['call_graph_edges']:>8}  "
              f"{metrics['poly_call_sites']:>4}  "
              f"{metrics['may_fail_casts']:>8}")

    print("\nprecision diffs against 3obj:")
    for name, run in contenders.items():
        diff = diff_results(baseline.result, run.result)
        print(f"  {name}: {diff.summary()}")


if __name__ == "__main__":
    main()
