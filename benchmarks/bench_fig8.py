"""Figure 8 benchmark: heap-abstraction construction cost + reduction.

Benchmarks the MAHJONG merging phase per profile and asserts the
object-count reduction stays in the paper's regime (the paper reports a
62% average over its 12 programs; the tolerance below accommodates the
reduced benchmark scale).
"""

from __future__ import annotations

import pytest

from repro.core.merging import merge_type_consistent_objects

from benchmarks.conftest import pre_for

PROFILES = ["luindex", "pmd", "checkstyle", "eclipse"]


@pytest.mark.parametrize("profile", PROFILES)
def test_merge_reduction(benchmark, profile):
    pre = pre_for(profile)
    benchmark.group = "fig8-merging"
    result = benchmark(lambda: merge_type_consistent_objects(pre.fpg))
    assert 0.30 < result.reduction < 0.95
    assert result.object_count_after < result.object_count_before


@pytest.mark.parametrize("profile", PROFILES)
def test_merge_is_deterministic(benchmark, profile):
    pre = pre_for(profile)
    benchmark.group = "fig8-determinism"

    def run_twice():
        a = merge_type_consistent_objects(pre.fpg)
        b = merge_type_consistent_objects(pre.fpg)
        return a, b

    a, b = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert a.mom == b.mom
