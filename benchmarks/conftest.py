"""Shared fixtures for the pytest-benchmark suite.

Benchmarks run at reduced workload scale so that pytest-benchmark's
repetition stays affordable; the full-scale numbers (with the timeout
tiers) are produced by ``python -m repro.bench all`` and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.analysis.pipeline import run_pre_analysis
from repro.workloads import load_profile

#: Scale used across the benchmark suite.
BENCH_SCALE = 0.3

_PROGRAM_CACHE = {}
_PRE_CACHE = {}


def program_for(profile: str, scale: float = BENCH_SCALE):
    key = (profile, scale)
    if key not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[key] = load_profile(profile, scale)
    return _PROGRAM_CACHE[key]


def pre_for(profile: str, scale: float = BENCH_SCALE):
    key = (profile, scale)
    if key not in _PRE_CACHE:
        _PRE_CACHE[key] = run_pre_analysis(program_for(profile, scale))
    return _PRE_CACHE[key]


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE
