"""Parallel execution layer benchmarks: merge-phase pools and the
sharded batch runner.

Mirrors ``python -m repro.bench parallel`` under pytest-benchmark: the
wide-type-spectrum ``spectrum`` profile's merge phase serial vs thread
vs process pool, and the corpus batch serial vs sharded.  Absolute
speedups depend on host cores (recorded by the standalone harness in
``bench_results/parallel.txt``); here the suite mainly guards against
regressions in the serial path and pathological pool overhead.
"""

from __future__ import annotations

import pytest

from repro.core.merging import MergeOptions, merge_type_consistent_objects
from repro.workloads import corpus_names, corpus_program

from benchmarks.conftest import pre_for

_POOL_OPTIONS = {
    "serial": None,
    "thread": MergeOptions(jobs=4, pool="thread"),
    "process": MergeOptions(jobs=2, pool="process"),
}


@pytest.mark.parametrize("pool", list(_POOL_OPTIONS))
def test_merge_pools(benchmark, pool):
    pre = pre_for("spectrum", 1.0)
    baseline = merge_type_consistent_objects(pre.fpg)
    benchmark.group = "parallel-merge"
    result = benchmark(
        lambda: merge_type_consistent_objects(pre.fpg, _POOL_OPTIONS[pool]))
    assert (sorted(tuple(sorted(cls)) for cls in result.classes)
            == sorted(tuple(sorted(cls)) for cls in baseline.classes))


@pytest.mark.parametrize("jobs", [None, 2], ids=["serial", "jobs2"])
def test_batch_sharding(benchmark, jobs):
    from repro.bench.batch import run_batch

    programs = [(name, corpus_program(name)) for name in corpus_names()]
    benchmark.group = "parallel-batch"
    result = benchmark(
        lambda: run_batch(list(programs), config="M-2obj", jobs=jobs))
    assert result.all_usable
    assert [r.program for r in result.records] == [n for n, _ in programs]
