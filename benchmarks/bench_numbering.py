"""Hierarchy-ordered numbering benchmarks: range masks vs scatter.

Mirrors ``python -m repro.bench numbering`` under pytest-benchmark:
the full mask-table build both ways, and full solves under each switch
position on both points-to backends.
"""

from __future__ import annotations

import pytest

from repro.bench.numbering import measure_mask_build, measure_numbering_ab
from repro.pta.bitset import (
    BACKEND_BITSET,
    BACKEND_SET,
    ClassFilterMasks,
    RangeFilterMasks,
)
from repro.pta.heapmodel import AllocationSiteAbstraction
from repro.pta.numbering import HierarchyNumbering
from repro.pta.solver import Solver

from benchmarks.conftest import program_for

PROFILES = ["luindex", "cycles"]


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("path", ["scatter", "range"])
def test_mask_table_build(benchmark, profile, path):
    """Build every class's filter mask over the numbered population."""
    program = program_for(profile, 1.0)
    numbering = HierarchyNumbering.build(program,
                                         AllocationSiteAbstraction())
    classes = [numbering.key_class[key] for key in numbering.slot_keys]
    is_subtype = program.hierarchy.is_subtype_names
    filter_classes = sorted(numbering.class_ranges)
    is_subtype(classes[0], filter_classes[0])  # warm the subtype memo

    def build():
        if path == "range":
            masks = RangeFilterMasks(numbering.class_ranges, classes,
                                     is_subtype, start=numbering.count)
        else:
            masks = ClassFilterMasks(classes, is_subtype)
        return [masks.mask_for(c) for c in filter_classes]

    benchmark.group = f"numbering-mask-build-{profile}"
    table = benchmark(build)
    assert len(table) == len(filter_classes)


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("numbering", [False, True], ids=["nonum", "num"])
@pytest.mark.parametrize("backend", [BACKEND_BITSET, BACKEND_SET])
def test_full_solve(benchmark, profile, numbering, backend):
    program = program_for(profile, 1.0)
    benchmark.group = f"numbering-solve-{profile}-{backend}"
    result = benchmark(
        lambda: Solver(program, pts_backend=backend,
                       numbering=numbering).solve()
    )
    assert result.stats()["numbering"] is numbering
    assert result.object_count > 0


@pytest.mark.parametrize("profile", ["luindex"])
def test_ab_reproduces_facts(benchmark, profile):
    """The harness's own correctness gates (facts and masks asserted
    identical inside the measure functions), kept under benchmark so
    the suite exercises them at bench scale."""
    program = program_for(profile, 1.0)
    build = measure_mask_build(program, profile, rounds=1)
    assert build.range_subtype_tests == 0
    assert build.scatter_subtype_tests > 0
    measurement = benchmark.pedantic(
        lambda: measure_numbering_ab(program, profile, "ci", repeats=1),
        rounds=1, iterations=1,
    )
    assert measurement.facts > 0
    assert measurement.numbered_slots > 0
