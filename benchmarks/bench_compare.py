"""Technique-comparison benchmarks: MAHJONG vs the alternatives.

The pytest-benchmark group "compare-pmd" is the related-work comparison
in miniature: the full 3obj baseline against the MAHJONG heap, the
allocation-type heap, and introspective (method-selective) refinement.
Precision assertions encode the paper's positioning: only MAHJONG
matches the baseline's type-dependent client answers.
"""

from __future__ import annotations

from repro.analysis.introspective import run_introspective
from repro.pta.context import selector_for
from repro.pta.heapmodel import AllocationSiteAbstraction, AllocationTypeAbstraction
from repro.pta.solver import Solver

from benchmarks.conftest import pre_for, program_for

SCALE = 0.4
_METRICS = {}


def _client_metrics(result):
    from repro.clients import build_call_graph, check_casts, devirtualize

    return (
        build_call_graph(result).edge_count,
        devirtualize(result).poly_call_site_count,
        check_casts(result).may_fail_count,
    )


def test_full_3obj(benchmark):
    program = program_for("pmd", SCALE)
    benchmark.group = "compare-pmd"
    result = benchmark.pedantic(
        lambda: Solver(program, selector_for("3obj"),
                       AllocationSiteAbstraction()).solve(),
        rounds=2, iterations=1,
    )
    _METRICS["3obj"] = _client_metrics(result)


def test_mahjong_3obj(benchmark):
    program = program_for("pmd", SCALE)
    pre = pre_for("pmd", SCALE)
    benchmark.group = "compare-pmd"
    result = benchmark.pedantic(
        lambda: Solver(program, selector_for("3obj"),
                       pre.abstraction).solve(),
        rounds=2, iterations=1,
    )
    _METRICS["M-3obj"] = _client_metrics(result)


def test_alloc_type_3obj(benchmark):
    program = program_for("pmd", SCALE)
    benchmark.group = "compare-pmd"
    result = benchmark.pedantic(
        lambda: Solver(program, selector_for("3obj"),
                       AllocationTypeAbstraction(program)).solve(),
        rounds=2, iterations=1,
    )
    _METRICS["T-3obj"] = _client_metrics(result)


def test_introspective_3obj(benchmark):
    program = program_for("pmd", SCALE)
    pre = pre_for("pmd", SCALE)
    benchmark.group = "compare-pmd"
    run = benchmark.pedantic(
        lambda: run_introspective(program, "3obj", threshold=8, pre=pre),
        rounds=2, iterations=1,
    )
    _METRICS["I-3obj"] = _client_metrics(run.result)


def test_positioning_shape():
    """Runs last: only MAHJONG preserves the baseline's precision."""
    assert set(_METRICS) == {"3obj", "M-3obj", "T-3obj", "I-3obj"}
    assert _METRICS["M-3obj"] == _METRICS["3obj"]
    assert _METRICS["T-3obj"] != _METRICS["3obj"]
    # introspective loses at least call-graph precision on this workload
    assert _METRICS["I-3obj"][0] >= _METRICS["3obj"][0]
