"""Ablation benchmarks for the merging engine's design choices.

Groups compare, on one FPG:

* ``ablation-pairing`` — representatives strategy vs literal all-pairs
  Algorithm 1 (same quotient, fewer equivalence tests);
* ``ablation-sharing`` — shared automata vs explicit per-pair NFA/DFA
  construction (the Section 5 optimization);
* ``ablation-disjoint-sets`` — union-by-rank + path compression vs the
  naive forest.
"""

from __future__ import annotations

import pytest

from repro.bench.ablation import merge_without_sharing
from repro.core.disjoint_sets import DisjointSets, NaiveDisjointSets
from repro.core.merging import MergeOptions, merge_type_consistent_objects

from benchmarks.conftest import pre_for

PROFILE = "luindex"


def test_pairing_representatives(benchmark):
    pre = pre_for(PROFILE)
    benchmark.group = "ablation-pairing"
    result = benchmark(lambda: merge_type_consistent_objects(
        pre.fpg, MergeOptions(strategy="representatives")))
    assert result.classes


def test_pairing_all_pairs(benchmark):
    pre = pre_for(PROFILE)
    benchmark.group = "ablation-pairing"
    result = benchmark(lambda: merge_type_consistent_objects(
        pre.fpg, MergeOptions(strategy="all_pairs")))
    assert result.classes


def test_pairing_canonical_forms(benchmark):
    from repro.core.minimization import merge_by_canonical_forms

    pre = pre_for(PROFILE)
    benchmark.group = "ablation-pairing"
    result = benchmark(lambda: merge_by_canonical_forms(pre.fpg))
    # identical quotient to the pairwise engine
    pairwise = merge_type_consistent_objects(pre.fpg)
    classes_of = lambda r: sorted(tuple(sorted(c)) for c in r.classes)
    assert classes_of(result) == classes_of(pairwise)


def test_sharing_enabled(benchmark):
    pre = pre_for(PROFILE)
    benchmark.group = "ablation-sharing"
    result = benchmark(
        lambda: merge_type_consistent_objects(pre.fpg).mom
    )
    assert result


def test_sharing_disabled(benchmark):
    pre = pre_for(PROFILE)
    benchmark.group = "ablation-sharing"
    mom = benchmark.pedantic(
        lambda: merge_without_sharing(pre.fpg), rounds=2, iterations=1
    )
    # the unshared baseline computes the same quotient
    shared_mom = merge_type_consistent_objects(pre.fpg).mom
    classes_of = lambda m: sorted(
        tuple(sorted(o for o in m if m[o] == rep)) for rep in set(m.values())
    )
    assert classes_of(mom) == classes_of(shared_mom)


def _union_workload(pre):
    base = merge_type_consistent_objects(pre.fpg)
    return [
        (min(cls), obj)
        for cls in base.classes
        for obj in cls
        if obj != min(cls)
    ]


@pytest.mark.parametrize("cls", [DisjointSets, NaiveDisjointSets],
                         ids=["rank+compression", "naive"])
def test_disjoint_sets(benchmark, cls):
    pre = pre_for(PROFILE)
    pairs = _union_workload(pre)
    objects = list(pre.fpg.objects())
    benchmark.group = "ablation-disjoint-sets"

    def run():
        sets = cls(objects)
        for a, b in pairs:
            sets.union(a, b)
        return sum(1 for obj in objects if sets.find(obj) == obj)

    roots = benchmark(run)
    assert roots > 0
