"""Tracing-overhead benchmarks for :mod:`repro.obs`.

Three configurations of the same full solve, grouped per profile so
pytest-benchmark's comparison table reads as an overhead ladder:

* ``untraced`` — ``tracer=None``, the true zero-cost baseline;
* ``null-sink`` — a :class:`~repro.obs.tracer.Tracer` with no sinks:
  span structure is tracked but every event is dropped.  This is the
  configuration the <5% overhead budget applies to (the hot-path cost
  is one ``is not None`` test per stride gate plus window rotation);
* ``in-memory`` — a full :class:`~repro.obs.tracer.InMemorySink`
  capture, the cost of ``analyze --trace``.

CI runs this module with ``--benchmark-disable`` (one pass, no timing
assertions) purely as an execution smoke test; the timing claims live
in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.obs import InMemorySink, Tracer
from repro.pta.solver import Solver

from benchmarks.conftest import program_for

PROFILES = ["cycles", "luindex"]

CONFIGS = {
    "untraced": lambda: None,
    "null-sink": lambda: Tracer(),
    "in-memory": lambda: Tracer(sinks=(InMemorySink(),)),
}


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("config", list(CONFIGS), ids=list(CONFIGS))
def test_solve_overhead(benchmark, profile, config):
    program = program_for(profile, 1.0)
    make_tracer = CONFIGS[config]
    benchmark.group = f"obs-solve-{profile}"
    result = benchmark(lambda: Solver(program,
                                      tracer=make_tracer()).solve())
    assert result.object_count > 0


@pytest.mark.parametrize("profile", ["cycles"])
def test_traced_solve_produces_complete_trace(benchmark, profile):
    """The in-memory capture measured above is also structurally
    complete: every stride window sums back to the solve total."""
    program = program_for(profile, 1.0)

    def traced_solve():
        sink = InMemorySink()
        Solver(program, tracer=Tracer(sinks=(sink,))).solve()
        return sink

    benchmark.group = "obs-capture"
    sink = benchmark(traced_solve)
    (solve,) = sink.find("solve")
    strides = [c for c in solve.children if c.name == "stride"]
    assert strides
    assert sum(s.attrs["iterations"] for s in strides) == \
        solve.attrs["iterations"]
