"""Points-to representation benchmarks: bitset vs legacy sets.

Two layers, mirroring ``python -m repro.bench backends``:

* propagation replay over the frozen constraint graph — the pure
  representation kernel (difference propagation, union, cast filters);
* full solves under each backend — the Amdahl-bound end-to-end view.
"""

from __future__ import annotations

import pytest

from repro.bench.backends import replay_propagation
from repro.pta.bitset import BACKEND_BITSET, BACKEND_SET
from repro.pta.context import selector_for
from repro.pta.solver import Solver

from benchmarks.conftest import program_for

PROFILES = ["luindex", "eclipse"]
BACKENDS = [BACKEND_SET, BACKEND_BITSET]


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_full_solve(benchmark, profile, backend):
    program = program_for(profile)
    benchmark.group = f"backends-solve-{profile}"
    result = benchmark(
        lambda: Solver(program, pts_backend=backend).solve()
    )
    assert result.pts_backend == backend
    assert result.object_count > 0


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_propagation_replay(benchmark, profile, backend):
    """Replay kernels alone; pytest-benchmark handles the repetition, so
    ``repeats=1`` per measured call."""
    from repro.bench.backends import _replay_bits, _replay_sets

    program = program_for(profile)
    solver = Solver(program, selector_for("ci"), pts_backend=BACKEND_BITSET,
                    scc=False)
    solver.solve()
    seeds = solver.propagation_seeds()
    succs = solver._succs
    n = len(succs)
    benchmark.group = f"backends-replay-{profile}"
    if backend == BACKEND_BITSET:
        mask_for = solver._filter_masks.mask_for
        _, iterations = benchmark(
            lambda: _replay_bits(n, succs, seeds, mask_for)
        )
    else:
        object_class = solver._object_class
        is_subtype = solver._is_subtype_name
        _, iterations = benchmark(
            lambda: _replay_sets(n, succs, seeds, object_class, is_subtype)
        )
    assert iterations > 0


@pytest.mark.parametrize("profile", ["luindex"])
def test_replay_reproduces_solve(benchmark, profile):
    """The harness's own correctness gate, kept under benchmark so the
    suite exercises it at bench scale."""
    program = program_for(profile)
    measurement = benchmark.pedantic(
        lambda: replay_propagation(program, "ci", repeats=1),
        rounds=1, iterations=1,
    )
    assert measurement.facts > 0
    assert measurement.speedup > 0
