"""Table 1 benchmark: equivalence-class reporting for checkstyle.

Benchmarks `describe_classes` and asserts the paper's qualitative rows:
a dominant string-builder class storing char arrays, same-type classes
split by stored element type, and a null-field class kept apart.
"""

from __future__ import annotations

from repro.core.heap_modeler import describe_classes

from benchmarks.conftest import pre_for


def test_table1_report(benchmark):
    pre = pre_for("checkstyle")
    benchmark.group = "table1"
    reports = benchmark(lambda: describe_classes(pre.fpg, pre.merge))

    by_type = {}
    for report in reports:
        by_type.setdefault(report.type_name, []).append(report)

    # Row 1 analogue: every StringBuilder merges into one class storing
    # only char arrays.
    (sb_row,) = by_type["StringBuilder"]
    assert sb_row.remark == "CharArray"
    assert sb_row.size == sb_row.total_objects_of_type

    # Rows 2/4/5 analogue: ListNode (same type) splits by element type.
    node_rows = by_type.get("ListNode", [])
    remarks = {r.remark for r in node_rows}
    assert len([r for r in remarks if "Elem" in r]) >= 2

    # Row 6 analogue: the never-initialized members sit alone.
    assert any(r.remark == "null fields" for r in reports)
