"""Figure 9 benchmark: equivalence-class distribution of checkstyle.

Benchmarks the full pre-analysis → merge → histogram pipeline and
asserts the paper's log-log shape: a heavy singleton mass plus a
dominant class far larger than the median.
"""

from __future__ import annotations

from repro.analysis.pipeline import run_pre_analysis

from benchmarks.conftest import BENCH_SCALE, program_for


def test_fig9_distribution(benchmark):
    program = program_for("checkstyle")
    benchmark.group = "fig9"

    def pipeline():
        pre = run_pre_analysis(program)
        return pre.merge.class_size_histogram()

    histogram = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    singletons = histogram.get(1, 0)
    largest = max(histogram)
    total_classes = sum(histogram.values())
    # singletons dominate the class count ...
    assert singletons > total_classes / 2
    # ... while one class dominates the object count
    assert largest > 10
