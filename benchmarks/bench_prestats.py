"""Section 6.1.1 benchmarks: pre-analysis phase costs.

Times each phase in isolation — the context-insensitive points-to
analysis, FPG construction, shared-automata construction, and the
Hopcroft–Karp equivalence check throughput — mirroring the paper's
claim that everything after ci is negligible.
"""

from __future__ import annotations

import pytest

from repro.core.automata import SharedAutomata
from repro.core.equivalence import shared_equivalent
from repro.core.fpg import build_fpg
from repro.pta.solver import Solver

from benchmarks.conftest import pre_for, program_for

PROFILES = ["luindex", "checkstyle"]


@pytest.mark.parametrize("profile", PROFILES)
def test_ci_pre_analysis(benchmark, profile):
    program = program_for(profile)
    benchmark.group = f"prestats-{profile}"
    result = benchmark(lambda: Solver(program).solve())
    assert result.object_count > 0


@pytest.mark.parametrize("profile", PROFILES)
def test_fpg_construction(benchmark, profile):
    pre = pre_for(profile)
    benchmark.group = f"prestats-{profile}"
    fpg = benchmark(lambda: build_fpg(pre.result))
    assert len(fpg) > 0


@pytest.mark.parametrize("profile", PROFILES)
def test_shared_automata_construction(benchmark, profile):
    pre = pre_for(profile)
    benchmark.group = f"prestats-{profile}"

    def build_all():
        automata = SharedAutomata(pre.fpg)
        for obj in pre.fpg.objects():
            automata.dfa_root(obj)
        return automata

    automata = benchmark(build_all)
    assert automata.state_count() > 0


@pytest.mark.parametrize("profile", PROFILES)
def test_equivalence_check_throughput(benchmark, profile):
    """Pairwise Hopcroft–Karp over every same-type pair of the FPG's
    first few hundred objects (amortized near-linear per check)."""
    pre = pre_for(profile)
    automata = SharedAutomata(pre.fpg)
    by_type = {}
    for obj in sorted(pre.fpg.objects()):
        by_type.setdefault(pre.fpg.type_of(obj), []).append(obj)
    pairs = [
        (objs[i], objs[j])
        for objs in by_type.values()
        for i in range(min(len(objs), 20))
        for j in range(i + 1, min(len(objs), 20))
    ]
    for obj in pre.fpg.objects():
        automata.dfa_root(obj)

    benchmark.group = f"prestats-{profile}"

    def check_all():
        return sum(
            1 for a, b in pairs
            if shared_equivalent(automata.dfa_root(a), automata.dfa_root(b))
        )

    equivalent_pairs = benchmark(check_all)
    assert 0 <= equivalent_pairs <= len(pairs)
