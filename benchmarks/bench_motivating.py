"""Section 2.1 motivating benchmark: pmd under 3obj / T-3obj / M-3obj.

The pytest-benchmark group "motivating-pmd" is the paper's opening
comparison in miniature: T-3obj fastest, M-3obj close behind, 3obj far
slower — while M-3obj's call graph matches 3obj's and T-3obj's is
larger (less precise).
"""

from __future__ import annotations

import pytest

from repro.clients import build_call_graph
from repro.pta.context import selector_for
from repro.pta.heapmodel import AllocationSiteAbstraction, AllocationTypeAbstraction
from repro.pta.solver import Solver

from benchmarks.conftest import pre_for, program_for

SCALE = 0.4
_EDGES = {}


def _run(program, heap_model):
    return Solver(program, selector_for("3obj"), heap_model,
                  timeout_seconds=600).solve()


def test_3obj_baseline(benchmark):
    program = program_for("pmd", SCALE)
    benchmark.group = "motivating-pmd"
    result = benchmark.pedantic(
        lambda: _run(program, AllocationSiteAbstraction()),
        rounds=2, iterations=1,
    )
    _EDGES["3obj"] = build_call_graph(result).edge_count


def test_t_3obj(benchmark):
    program = program_for("pmd", SCALE)
    benchmark.group = "motivating-pmd"
    result = benchmark.pedantic(
        lambda: _run(program, AllocationTypeAbstraction(program)),
        rounds=2, iterations=1,
    )
    _EDGES["T-3obj"] = build_call_graph(result).edge_count


def test_m_3obj(benchmark):
    program = program_for("pmd", SCALE)
    pre = pre_for("pmd", SCALE)
    benchmark.group = "motivating-pmd"
    result = benchmark.pedantic(
        lambda: _run(program, pre.abstraction),
        rounds=2, iterations=1,
    )
    _EDGES["M-3obj"] = build_call_graph(result).edge_count


def test_precision_shape():
    """Runs last: M-3obj matches 3obj exactly; T-3obj is less precise."""
    assert set(_EDGES) == {"3obj", "T-3obj", "M-3obj"}
    assert _EDGES["M-3obj"] == _EDGES["3obj"]
    assert _EDGES["T-3obj"] > _EDGES["3obj"]
