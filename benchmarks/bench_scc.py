"""Constraint-graph condensation benchmarks: SCC on vs off.

Mirrors ``python -m repro.bench scc`` under pytest-benchmark: full
solves of the cycle-heavy ``cycles`` stressor and the mostly-acyclic
``luindex`` control under each switch position, plus the detection
pass alone (one Tarjan sweep over a solved constraint graph).
"""

from __future__ import annotations

import pytest

from repro.bench.scc import measure_scc_ab
from repro.core.disjoint_sets import IntDisjointSets
from repro.pta.context import selector_for
from repro.pta.scc import condense_copy_graph
from repro.pta.solver import Solver

from benchmarks.conftest import program_for

PROFILES = ["cycles", "luindex"]


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("scc", [False, True], ids=["scc-off", "scc-on"])
def test_full_solve(benchmark, profile, scc):
    program = program_for(profile, 1.0)
    benchmark.group = f"scc-solve-{profile}"
    result = benchmark(lambda: Solver(program, scc=scc).solve())
    assert result.stats()["scc"] is scc
    assert result.object_count > 0


@pytest.mark.parametrize("profile", PROFILES)
def test_detection_pass(benchmark, profile):
    """One full Tarjan sweep over the final (uncondensed) graph — the
    cost a stride gate pays when the copy subgraph grew."""
    program = program_for(profile, 1.0)
    solver = Solver(program, selector_for("ci"), scc=False)
    solver.solve()
    succs = solver._succs
    n = len(succs)
    benchmark.group = "scc-detection"
    cycles, order = benchmark(
        lambda: condense_copy_graph(succs, IntDisjointSets(n))
    )
    assert len(order) == n
    if profile == "cycles":
        assert cycles


@pytest.mark.parametrize("profile", ["cycles"])
def test_ab_reproduces_facts(benchmark, profile):
    """The harness's own correctness gate (facts asserted identical
    inside ``measure_scc_ab``), kept under benchmark so the suite
    exercises it at bench scale."""
    program = program_for(profile, 1.0)
    measurement = benchmark.pedantic(
        lambda: measure_scc_ab(program, profile, "ci", repeats=1),
        rounds=1, iterations=1,
    )
    assert measurement.facts > 0
    assert measurement.sccs_collapsed > 0
    assert measurement.work_ratio > 1.0
