"""Table 2 benchmarks: main-analysis time per configuration.

One benchmark per (tier-1 profile × analysis configuration).  The
pytest-benchmark comparison table is the scaled-down Table 2: within a
group (one profile + context-sensitivity), the MAHJONG variant should be
markedly faster than its baseline, and the allocation-type variant
fastest of all.  Client-precision equality between kA and M-kA is
asserted alongside.
"""

from __future__ import annotations

import pytest

from repro.analysis.pipeline import run_analysis
from repro.pta.heapmodel import AllocationSiteAbstraction, AllocationTypeAbstraction
from repro.pta.context import selector_for
from repro.pta.solver import Solver

from benchmarks.conftest import pre_for, program_for

PROFILES = ["luindex", "antlr"]
BASELINES = ["2cs", "2obj", "3obj", "2type", "3type"]


def _solve(program, sensitivity, heap_model):
    return Solver(program, selector_for(sensitivity), heap_model,
                  timeout_seconds=600).solve()


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("baseline", BASELINES)
def test_baseline_analysis(benchmark, profile, baseline):
    program = program_for(profile)
    benchmark.group = f"table2-{profile}-{baseline}"
    result = benchmark(
        lambda: _solve(program, baseline, AllocationSiteAbstraction())
    )
    assert result.reachable_methods()


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("baseline", BASELINES)
def test_mahjong_analysis(benchmark, profile, baseline):
    program = program_for(profile)
    pre = pre_for(profile)
    benchmark.group = f"table2-{profile}-{baseline}"
    result = benchmark(
        lambda: _solve(program, baseline, pre.abstraction)
    )
    assert result.reachable_methods()


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("baseline", ["2obj", "3obj"])
def test_alloc_type_analysis(benchmark, profile, baseline):
    program = program_for(profile)
    benchmark.group = f"table2-{profile}-{baseline}"
    result = benchmark(
        lambda: _solve(program, baseline, AllocationTypeAbstraction(program))
    )
    assert result.reachable_methods()


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("baseline", BASELINES)
def test_precision_equality_of_mahjong(benchmark, profile, baseline):
    """Not a timing benchmark per se: asserts the Table 2 precision
    columns (kA == M-kA for all three clients) while timing the combined
    pair for the record."""
    program = program_for(profile)
    pre = pre_for(profile)

    def both():
        base = run_analysis(program, baseline, timeout_seconds=600)
        mahjong = run_analysis(program, f"M-{baseline}",
                               timeout_seconds=600, pre=pre)
        return base.metrics(), mahjong.metrics()

    benchmark.group = f"table2-precision-{profile}"
    base_metrics, mahjong_metrics = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    for metric in ("call_graph_edges", "poly_call_sites", "may_fail_casts"):
        assert base_metrics[metric] == mahjong_metrics[metric]
